//! # rvsim-cli — batch benchmarking interface
//!
//! The paper's CLI (§II-E) lets advanced users run large programs in a batch
//! fashion: it takes an assembly (or C) source file and an architecture
//! description in JSON, plus options for the entry point, memory contents,
//! output verbosity and output format (text or JSON).  The original CLI
//! connects to the simulation server over HTTP; this reproduction runs the
//! simulator in-process, which preserves the user-visible behaviour (same
//! inputs, same reports) without the network hop.

#![warn(missing_docs)]

use rvsim_cc::OptLevel;
use rvsim_core::{ArchitectureConfig, HaltReason, Simulator};
use rvsim_mem::MemorySettings;

/// Output format of the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable text report.
    #[default]
    Text,
    /// JSON statistics object.
    Json,
}

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// Path to the program source (assembly, or C with `--c`).
    pub program_path: String,
    /// Path to the architecture JSON (optional — defaults when omitted).
    pub arch_path: Option<String>,
    /// Treat the program as C and compile it first.
    pub compile_c: bool,
    /// Optimization level for C compilation.
    pub opt_level: OptLevel,
    /// Entry label.
    pub entry: Option<String>,
    /// CSV file with memory arrays (the Memory Settings window's export).
    pub memory_csv: Option<String>,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Output format.
    pub format: OutputFormat,
    /// Print the debug log after the run.
    pub verbose: bool,
    /// Dump a memory range after the run: `(address, length)`.
    pub dump_memory: Option<(u64, usize)>,
}

/// Usage string printed on `--help` or argument errors.
pub const USAGE: &str = "\
rvsim-cli — batch interface to the superscalar RISC-V simulator

USAGE:
    rvsim-cli --program <FILE> [--arch <FILE.json>] [OPTIONS]

OPTIONS:
    --program <FILE>        assembly source file (mandatory)
    --arch <FILE>           architecture description in JSON
    --c                     treat the program as C and compile it first
    --opt <0|1|2|3>         C optimization level (default 0)
    --entry <LABEL>         entry point label (default: main or first instruction)
    --memory <FILE.csv>     memory arrays in CSV form (name,type,index,value)
    --max-cycles <N>        cycle budget (default 10000000)
    --format <text|json>    output format (default text)
    --dump-memory <ADDR,LEN>  hex-dump LEN bytes at ADDR after the run
    --verbose               also print the cycle-stamped debug log
    --help                  show this help
";

impl CliOptions {
    /// Parse command-line arguments (without the executable name).
    pub fn parse(args: &[String]) -> Result<CliOptions, String> {
        let mut options = CliOptions { max_cycles: 10_000_000, ..Default::default() };
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--program" => options.program_path = value(&mut i, "--program")?,
                "--arch" => options.arch_path = Some(value(&mut i, "--arch")?),
                "--c" => options.compile_c = true,
                "--opt" => {
                    let v = value(&mut i, "--opt")?;
                    options.opt_level = OptLevel::parse(&v)
                        .ok_or_else(|| format!("invalid optimization level `{v}`"))?;
                }
                "--entry" => options.entry = Some(value(&mut i, "--entry")?),
                "--memory" => options.memory_csv = Some(value(&mut i, "--memory")?),
                "--max-cycles" => {
                    let v = value(&mut i, "--max-cycles")?;
                    options.max_cycles =
                        v.parse().map_err(|_| format!("invalid cycle budget `{v}`"))?;
                }
                "--format" => {
                    let v = value(&mut i, "--format")?;
                    options.format = match v.as_str() {
                        "text" => OutputFormat::Text,
                        "json" => OutputFormat::Json,
                        other => return Err(format!("unknown format `{other}`")),
                    };
                }
                "--dump-memory" => {
                    let v = value(&mut i, "--dump-memory")?;
                    let (addr, len) = v
                        .split_once(',')
                        .ok_or_else(|| "expected ADDR,LEN for --dump-memory".to_string())?;
                    let addr = parse_u64(addr).ok_or_else(|| format!("bad address `{addr}`"))?;
                    let len: usize =
                        len.trim().parse().map_err(|_| format!("bad length `{len}`"))?;
                    options.dump_memory = Some((addr, len));
                }
                "--verbose" => options.verbose = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
            }
            i += 1;
        }
        if options.program_path.is_empty() {
            return Err(format!("--program is mandatory\n\n{USAGE}"));
        }
        Ok(options)
    }
}

fn parse_u64(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

// ---------------------------------------------------------------------------
// `cosim` subcommand: differential co-simulation against the reference ISS.
// ---------------------------------------------------------------------------

/// Usage string of the `cosim` subcommand.
pub const COSIM_USAGE: &str = "\
rvsim-cli cosim — differential co-simulation of random programs
               (superscalar pipeline vs in-order reference ISS)

USAGE:
    rvsim-cli cosim [OPTIONS]

OPTIONS:
    --programs <N>          random programs to co-simulate (default 200)
    --seed <N>              batch seed; each program's own seed is derived
                            from it and printed on divergence (default 42)
    --program-seed <N>      replay ONE program from the per-program generator
                            seed a divergence report printed (bypasses the
                            batch-seed derivation; --programs is ignored)
    --arch <FILE>           architecture description in JSON; without it the
                            batch runs on the scalar, default 2-wide AND
                            4-wide / deep-ROB (wide-4) presets, plus one
                            D-heavy generator batch on the default machine
    --instructions <N>      random items per loop body (default 32; use the
                            value printed in the report when replaying)
    --dfp                   enable D-extension (double-precision) mixes in
                            the generator (replay flag for the D-heavy
                            batch; printed in its divergence reports)
    --max-cycles <N>        pipeline cycle budget per program (default 200000)
    --format <text|json>    output format (default text)
    --inject-fault <M[:X]>  deliberately corrupt ISS results for mnemonic M
                            (XOR destination bits with hex X, default 1) to
                            demonstrate that divergences are caught
    --help                  show this help

Each program runs with memory-settings load/store latencies derived from its
program seed (1-8 cycles each), so a batch also sweeps non-default memory
configurations; --program-seed re-derives the same timings on replay.

Exit status is 1 when any divergence (or generator error) is found, when a
replayed program is inconclusive, or when a batch matches nothing; the
report contains a shrunk minimal reproducer per divergence.
";

/// Parsed options of the `cosim` subcommand.
#[derive(Debug, Clone)]
pub struct CosimCliOptions {
    /// Number of random programs.
    pub programs: usize,
    /// Batch seed.
    pub seed: u64,
    /// Replay a single program directly from its generator seed (as printed
    /// in a divergence report) instead of running a batch.
    pub program_seed: Option<u64>,
    /// Path to the architecture JSON (optional).
    pub arch_path: Option<String>,
    /// Random items per generated loop body.
    pub instructions: usize,
    /// Enable D-extension mixes in the generator (`GenOptions::dp_ops`).
    pub dfp: bool,
    /// Pipeline cycle budget per program.
    pub max_cycles: u64,
    /// Output format.
    pub format: OutputFormat,
    /// Deliberate ISS fault: `mnemonic[:xor-bits-hex]`.
    pub inject_fault: Option<String>,
}

impl Default for CosimCliOptions {
    fn default() -> Self {
        CosimCliOptions {
            programs: 200,
            seed: 42,
            program_seed: None,
            arch_path: None,
            instructions: 32,
            dfp: false,
            max_cycles: 200_000,
            format: OutputFormat::Text,
            inject_fault: None,
        }
    }
}

impl CosimCliOptions {
    /// Parse the arguments following the `cosim` subcommand word.
    pub fn parse(args: &[String]) -> Result<CosimCliOptions, String> {
        let mut options = CosimCliOptions::default();
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--programs" => {
                    let v = value(&mut i, "--programs")?;
                    options.programs =
                        v.parse().map_err(|_| format!("invalid program count `{v}`"))?;
                }
                "--seed" => {
                    let v = value(&mut i, "--seed")?;
                    options.seed = parse_u64(&v).ok_or_else(|| format!("invalid seed `{v}`"))?;
                }
                "--program-seed" => {
                    let v = value(&mut i, "--program-seed")?;
                    options.program_seed =
                        Some(parse_u64(&v).ok_or_else(|| format!("invalid seed `{v}`"))?);
                }
                "--arch" => options.arch_path = Some(value(&mut i, "--arch")?),
                "--instructions" => {
                    let v = value(&mut i, "--instructions")?;
                    options.instructions =
                        v.parse().map_err(|_| format!("invalid instruction count `{v}`"))?;
                }
                "--dfp" => options.dfp = true,
                "--max-cycles" => {
                    let v = value(&mut i, "--max-cycles")?;
                    options.max_cycles =
                        v.parse().map_err(|_| format!("invalid cycle budget `{v}`"))?;
                }
                "--format" => {
                    let v = value(&mut i, "--format")?;
                    options.format = match v.as_str() {
                        "text" => OutputFormat::Text,
                        "json" => OutputFormat::Json,
                        other => return Err(format!("unknown format `{other}`")),
                    };
                }
                "--inject-fault" => options.inject_fault = Some(value(&mut i, "--inject-fault")?),
                "--help" | "-h" => return Err(COSIM_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{COSIM_USAGE}")),
            }
            i += 1;
        }
        if options.programs == 0 {
            return Err("--programs must be at least 1".to_string());
        }
        Ok(options)
    }
}

// ---------------------------------------------------------------------------
// `bench` subcommand: pipeline-throughput benchmark (retired instrs/second).
// ---------------------------------------------------------------------------

/// Usage string of the `bench` subcommand.
pub const BENCH_USAGE: &str = "\
rvsim-cli bench — throughput benchmarks
               (pipeline: retired instructions per host second;
                --server: GetState request path + load-test scenario)

USAGE:
    rvsim-cli bench [OPTIONS]

OPTIONS:
    --json                  emit machine-readable JSON (and write it to
                            BENCH_pipeline.json / BENCH_server.json unless
                            --out changes the path)
    --out <FILE>            JSON output path (implies --json)
    --min-seconds <F>       minimum measurement window per benchmark cell
                            (default 0.2; use a small value for smoke runs)
    --server                measure the server request path instead of the
                            pipeline: raw GetState p50/p90 and requests/s
                            with and without compression, plus the paper's
                            load-test scenario at 1/8/32 users
    --time-scale <F>        load-generator time scale for --server
                            (default 0.05; 1.0 = paper timing)
    --users <N[,N..]>       load-generator user counts for --server
                            (default 1,8,32)
    --high-connections <N[,N..]>
                            also sweep the event-loop front end with N
                            keep-alive loopback connections per point at a
                            constant aggregate request rate (server mode;
                            default: skipped).  When client and server fds
                            together exceed the fd budget the server runs
                            in a child `rvsim-cli serve` process
    --multi-node <N[,N..]>  also measure the router tier: for each backend
                            count N, start N emulated-remote nodes behind a
                            consistent-hash router and record the aggregate
                            cached-GetState throughput, plus one
                            drain-under-load sample (server mode; default:
                            skipped)
    --durability            also measure crash recovery: kill one of two
                            checkpointing backends mid-load and record
                            sessions recovered, checkpoint staleness and the
                            client error timeline (server mode; default:
                            skipped)
    --help                  show this help
";

/// Parsed options of the `bench` subcommand.
#[derive(Debug, Clone)]
pub struct BenchCliOptions {
    /// Emit (and write) JSON instead of the text table.
    pub json: bool,
    /// Path of the JSON report (written only in JSON mode); `None` selects
    /// the per-mode default (`BENCH_pipeline.json` / `BENCH_server.json`).
    pub out: Option<String>,
    /// Minimum measurement window per benchmark cell, in seconds.
    pub min_seconds: f64,
    /// Measure the server request path instead of the pipeline.
    pub server: bool,
    /// Load-generator time scale (server mode).
    pub time_scale: f64,
    /// Load-generator user counts (server mode).
    pub users: Vec<usize>,
    /// High-connection sweep points (server mode; empty = skip the sweep).
    pub high_connections: Vec<usize>,
    /// Multi-node backend counts (server mode; empty = skip the section).
    pub multi_node: Vec<usize>,
    /// Measure the kill-one-backend durability scenario (server mode).
    pub durability: bool,
}

impl Default for BenchCliOptions {
    fn default() -> Self {
        BenchCliOptions {
            json: false,
            out: None,
            min_seconds: 0.2,
            server: false,
            time_scale: 0.05,
            users: vec![1, 8, 32],
            high_connections: Vec::new(),
            multi_node: Vec::new(),
            durability: false,
        }
    }
}

impl BenchCliOptions {
    /// Effective JSON output path.
    pub fn out_path(&self) -> &str {
        match &self.out {
            Some(path) => path,
            None if self.server => "BENCH_server.json",
            None => "BENCH_pipeline.json",
        }
    }
}

impl BenchCliOptions {
    /// Parse the arguments following the `bench` subcommand word.
    pub fn parse(args: &[String]) -> Result<BenchCliOptions, String> {
        let mut options = BenchCliOptions::default();
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--json" => options.json = true,
                "--out" => {
                    options.out = Some(value(&mut i, "--out")?);
                    options.json = true;
                }
                "--min-seconds" => {
                    let v = value(&mut i, "--min-seconds")?;
                    options.min_seconds =
                        v.parse().map_err(|_| format!("invalid duration `{v}`"))?;
                    if !options.min_seconds.is_finite() || options.min_seconds < 0.0 {
                        return Err(format!("invalid duration `{v}`"));
                    }
                }
                "--server" => options.server = true,
                "--time-scale" => {
                    let v = value(&mut i, "--time-scale")?;
                    options.time_scale =
                        v.parse().map_err(|_| format!("invalid time scale `{v}`"))?;
                    if !options.time_scale.is_finite() || options.time_scale < 0.0 {
                        return Err(format!("invalid time scale `{v}`"));
                    }
                }
                "--users" => {
                    let v = value(&mut i, "--users")?;
                    options.users = v
                        .split(',')
                        .map(|part| {
                            part.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n > 0)
                                .ok_or_else(|| format!("invalid user count `{part}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if options.users.is_empty() {
                        return Err("--users needs at least one count".to_string());
                    }
                }
                "--high-connections" => {
                    let v = value(&mut i, "--high-connections")?;
                    options.high_connections = v
                        .split(',')
                        .map(|part| {
                            part.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n > 0)
                                .ok_or_else(|| format!("invalid connection count `{part}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if options.high_connections.is_empty() {
                        return Err("--high-connections needs at least one count".to_string());
                    }
                }
                "--multi-node" => {
                    let v = value(&mut i, "--multi-node")?;
                    options.multi_node = v
                        .split(',')
                        .map(|part| {
                            part.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&n| n > 0)
                                .ok_or_else(|| format!("invalid backend count `{part}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if options.multi_node.is_empty() {
                        return Err("--multi-node needs at least one count".to_string());
                    }
                }
                "--durability" => options.durability = true,
                "--help" | "-h" => return Err(BENCH_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{BENCH_USAGE}")),
            }
            i += 1;
        }
        Ok(options)
    }
}

/// Run the `bench` subcommand.  In JSON mode the report is also written to
/// `options.out` (`BENCH_pipeline.json` / `BENCH_server.json` by default) so
/// CI can archive the perf trajectory.
pub fn run_bench(options: &BenchCliOptions) -> Result<String, String> {
    if options.server {
        return run_server_bench(options);
    }
    let samples = rvsim_bench::run_pipeline_bench(options.min_seconds);
    let total_retired: f64 = samples.iter().map(|s| s.retired_per_second).sum();
    let geomean = if samples.is_empty() {
        0.0
    } else {
        let log_sum: f64 = samples.iter().map(|s| s.retired_per_second.ln()).sum();
        (log_sum / samples.len() as f64).exp()
    };

    if options.json {
        let value = serde_json::json!({
            "benchmark": "pipeline_throughput",
            "metric": "retired_instructions_per_host_second",
            "min_seconds_per_cell": options.min_seconds,
            "samples": samples,
            "geomean_retired_per_second": geomean,
            "sum_retired_per_second": total_retired,
        });
        let mut text = serde_json::to_string_pretty(&value).expect("bench report serializes");
        text.push('\n');
        let out = options.out_path();
        std::fs::write(out, &text).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        return Ok(text);
    }

    let mut out = String::new();
    out.push_str("=== pipeline throughput (retired instructions / host second) ===\n");
    out.push_str(&format!(
        "{:<12} {:<20} {:>6} {:>12} {:>8} {:>16}\n",
        "workload", "config", "width", "instrs/run", "runs", "retired/s"
    ));
    for s in &samples {
        out.push_str(&format!(
            "{:<12} {:<20} {:>6} {:>12} {:>8} {:>16.0}\n",
            s.workload, s.config, s.fetch_width, s.committed_per_run, s.runs, s.retired_per_second
        ));
    }
    out.push_str(&format!("geomean: {geomean:.0} retired instructions/s\n"));
    Ok(out)
}

/// Run the server-throughput benchmark (`bench --server`).
fn run_server_bench(options: &BenchCliOptions) -> Result<String, String> {
    let bench_options = rvsim_bench::ServerBenchOptions {
        min_seconds: options.min_seconds,
        time_scale: options.time_scale,
        users: options.users.clone(),
    };
    let mut report = rvsim_bench::run_server_bench(&bench_options);
    if !options.high_connections.is_empty() {
        report.high_connection = run_high_connection_sweep(
            &options.high_connections,
            &rvsim_loadgen::HighConnectionOptions::default(),
        )?;
    }
    if !options.multi_node.is_empty() {
        // Each scaling point is its own fleet; a sub-second window is too
        // noisy to compare them, so the per-point floor is 1s even when the
        // rest of the bench runs in smoke mode.
        report.multi_node =
            rvsim_bench::run_multi_node_bench(&options.multi_node, options.min_seconds.max(1.0));
    }
    if options.durability {
        // The scenario needs room for checkpoints, the kill and the probe
        // cycle; `run_durability_bench` enforces its own 3s floor.
        report.durability = rvsim_bench::run_durability_bench(options.min_seconds);
    }

    // Before/after check: compare this run's headline numbers against the
    // previously committed report at the output path, if one exists.  The
    // delta is the measured cost of the always-on request tracing.
    let now_rps = report.headline_get_state_rps();
    let now_p90 = report
        .load
        .iter()
        .find(|s| s.mode == "full" && s.users == 32)
        .map(|s| s.report.p90_latency_ms);
    if let Some(section) = report.observability.as_mut() {
        if let Ok(old) =
            std::fs::read_to_string(options.out_path()).map_err(|e| e.to_string()).and_then(
                |text| serde_json::from_str::<serde_json::Value>(&text).map_err(|e| e.to_string()),
            )
        {
            section.baseline_headline_get_state_rps = old["headline_get_state_rps"].as_f64();
            if let (Some(before), Some(now)) = (section.baseline_headline_get_state_rps, now_rps) {
                if before > 0.0 {
                    section.headline_delta_ratio = Some(now / before - 1.0);
                }
            }
            section.baseline_load_p90_ms = old["load"].as_array().and_then(|rows| {
                rows.iter()
                    .find(|r| r["mode"] == "full" && r["users"] == 32)
                    .and_then(|r| r["report"]["p90_latency_ms"].as_f64())
            });
            if let (Some(before), Some(now)) = (section.baseline_load_p90_ms, now_p90) {
                if before > 0.0 {
                    section.load_p90_delta_ratio = Some(now / before - 1.0);
                }
            }
        }
    }

    if options.json {
        let value = serde_json::json!({
            "benchmark": "server_request",
            "metric": "get_state_requests_per_second",
            "min_seconds_per_cell": options.min_seconds,
            "time_scale": options.time_scale,
            "headline_get_state_rps": report.headline_get_state_rps(),
            "raw": report.raw,
            "load": report.load,
            "tcp": report.tcp,
            "high_connection": report.high_connection,
            "multi_node": report.multi_node,
            "durability": report.durability,
            "observability": report.observability,
        });
        let mut text = serde_json::to_string_pretty(&value).expect("server report serializes");
        text.push('\n');
        let out = options.out_path();
        std::fs::write(out, &text).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        return Ok(text);
    }

    let mut out = String::new();
    out.push_str("=== server request path (GetState) ===\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>12} {:>10} {:>10} {:>10}\n",
        "scenario", "compress", "requests/s", "p50 us", "p90 us", "bytes"
    ));
    for s in &report.raw {
        out.push_str(&format!(
            "{:<12} {:>10} {:>12.0} {:>10.1} {:>10.1} {:>10}\n",
            s.scenario, s.compressed, s.requests_per_second, s.p50_us, s.p90_us, s.payload_bytes
        ));
    }
    out.push_str("=== load test (paper scenario, in-process) ===\n");
    for s in &report.load {
        out.push_str(&s.report.table_row(&format!("{}/{}", s.mode, s.users)));
        out.push('\n');
    }
    out.push_str("=== load test (paper scenario, TCP loopback) ===\n");
    if report.tcp.is_empty() {
        out.push_str("(skipped: loopback sockets unavailable)\n");
    }
    for s in &report.tcp {
        out.push_str(&s.report.table_row(&format!("{}/{}", s.mode, s.users)));
        out.push('\n');
    }
    if !report.high_connection.is_empty() {
        out.push_str("=== high-connection sweep (event-loop front end, TCP loopback) ===\n");
        for r in &report.high_connection {
            out.push_str(&r.table_row());
            out.push('\n');
        }
    }
    if let Some(section) = &report.multi_node {
        out.push_str(&format!(
            "=== multi-node scaling (router tier, {}us emulated service time) ===\n",
            section.emulated_service_time_us
        ));
        out.push_str(&format!(
            "{:<10} {:>10} {:>12} {:>12} {:>8}\n",
            "backends", "sessions", "requests", "req/s", "errors"
        ));
        for s in &section.scaling {
            out.push_str(&format!(
                "{:<10} {:>10} {:>12} {:>12.0} {:>8}\n",
                s.backends, s.sessions, s.requests, s.aggregate_rps, s.errors
            ));
        }
        out.push_str(&format!("speedup 1 -> max: {:.2}x\n", section.speedup_1_to_max));
        if let Some(d) = &section.drain {
            out.push_str(&format!(
                "live drain: {}/{} sessions migrated, {} client requests, {} errors\n",
                d.migrated, d.sessions, d.requests, d.errors
            ));
        }
    }
    if let Some(d) = &report.durability {
        out.push_str(&format!(
            "=== durability (kill one of two backends mid-load, {}ms checkpoints) ===\n",
            d.checkpoint_interval_ms
        ));
        out.push_str(&format!(
            "{}/{} sessions recovered ({} were on the killed backend, {} lost), \
             max staleness {} ms\n",
            d.recovered, d.sessions, d.sessions_on_killed_backend, d.lost, d.max_staleness_ms
        ));
        out.push_str(&format!(
            "{} client requests in {:.2}s, {} errors, {} breaker fast-fails; \
             errors by second: {:?}\n",
            d.requests, d.wall_seconds, d.errors, d.breaker_fast_fails, d.errors_by_second
        ));
    }
    if let Some(o) = &report.observability {
        out.push_str("=== observability overhead (tracing primitives, per op) ===\n");
        out.push_str(&format!(
            "histogram record {:.1} ns, journal append {:.1} ns, id mint {:.1} ns, \
             clock sample {:.1} ns => ~{:.0} ns per traced request\n",
            o.histogram_record_ns,
            o.journal_record_ns,
            o.mint_request_id_ns,
            o.clock_sample_ns,
            o.per_request_overhead_ns
        ));
        if let (Some(before), Some(delta)) =
            (o.baseline_headline_get_state_rps, o.headline_delta_ratio)
        {
            out.push_str(&format!(
                "headline GetState: {before:.0} req/s committed -> {:+.2}% this run\n",
                delta * 100.0
            ));
        }
        if let (Some(before), Some(delta)) = (o.baseline_load_p90_ms, o.load_p90_delta_ratio) {
            out.push_str(&format!(
                "32-user p90: {before:.3} ms committed -> {:+.2}% this run\n",
                delta * 100.0
            ));
        }
    }
    Ok(out)
}

/// Run the high-connection latency sweep: hold `counts` keep-alive loopback
/// connections (one point per count) against the event-loop front end at a
/// constant aggregate request rate.  `base` carries the pacing/duration
/// parameters; the per-point connection count overrides `base.connections`.
///
/// Client and server each burn one fd per connection, so both halves fit a
/// single process only while twice the largest count stays inside the fd
/// budget.  Beyond that the server runs as a child `rvsim-cli serve`
/// process with its own budget, discovered through the startup banner.
fn run_high_connection_sweep(
    counts: &[usize],
    base: &rvsim_loadgen::HighConnectionOptions,
) -> Result<Vec<rvsim_loadgen::HighConnectionReport>, String> {
    use std::io::BufRead;

    let max = counts.iter().copied().max().unwrap_or(0);
    let cap = max + 64;
    let in_process = max.saturating_mul(2) + 128 <= rvsim_loadgen::fd_budget();

    let sweep = |addr: std::net::SocketAddr| -> Result<Vec<_>, String> {
        counts
            .iter()
            .map(|&connections| {
                let options = rvsim_loadgen::HighConnectionOptions { connections, ..base.clone() };
                rvsim_loadgen::run_high_connection_test(addr, &options)
            })
            .collect()
    };

    if in_process {
        let net = start_serve(&ServeCliOptions {
            tcp: true,
            addr: "127.0.0.1:0".to_string(),
            max_connections: cap,
            ..ServeCliOptions::default()
        })?;
        let reports = sweep(net.local_addr());
        net.shutdown();
        return reports;
    }

    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut child = std::process::Command::new(exe)
        .args(["serve", "--tcp", "--addr", "127.0.0.1:0", "--max-connections"])
        .arg(cap.to_string())
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn serve child: {e}"))?;
    let mut banner = String::new();
    let read = child.stdout.take().map(|out| std::io::BufReader::new(out).read_line(&mut banner));
    let result = match read {
        Some(Ok(n)) if n > 0 => parse_serve_banner(&banner).and_then(sweep),
        _ => Err("serve child produced no startup banner".to_string()),
    };
    let _ = child.kill();
    let _ = child.wait();
    result
}

/// Extract the bound address from the serve startup banner
/// (`rvsim-net listening on http://IP:PORT (...)`).
fn parse_serve_banner(line: &str) -> Result<std::net::SocketAddr, String> {
    line.split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|addr| addr.parse().ok())
        .ok_or_else(|| format!("unexpected serve banner `{}`", line.trim()))
}

// ---------------------------------------------------------------------------
// `serve` subcommand: the TCP/HTTP network front end.
// ---------------------------------------------------------------------------

/// Usage string of the `serve` subcommand.
pub const SERVE_USAGE: &str = "\
rvsim-cli serve — run the simulation server behind the rvsim-net
               HTTP/1.1 front end (POST /api, GET /metrics, GET /healthz)

USAGE:
    rvsim-cli serve --tcp [OPTIONS]

OPTIONS:
    --tcp                   serve over TCP (mandatory: the only transport;
                            in-process serving has no CLI — use the library)
    --router <A:P[,A:P..]>  run as a router tier instead of a simulation
                            node: consistent-hash sessions across the given
                            backend addresses, proxy the protocol, aggregate
                            /metrics, and accept POST /admin/drain
    --addr <IP:PORT>        bind address (default 127.0.0.1:8911; port 0
                            picks a free port, printed at startup)
    --event-loops <N>       event-loop threads; each carries a share of all
                            connections on one epoll instance (default 2)
    --dispatch-workers <N>  worker threads executing POST /api requests
                            (default 4)
    --max-connections <N>   live-connection cap; beyond it new connections
                            are answered 503 and closed (default 16384)
    --pending <N>           parsed requests that may queue for a dispatch
                            worker before 503s are served (default 1024)
    --no-compress           serve plain JSON payloads (flag byte 0)
    --idle-ttl <SECONDS>    evict sessions idle for this long (default: no
                            eviction); the sweep runs on the housekeeping tick
    --housekeeping-ms <N>   housekeeping-tick cadence in milliseconds
                            (default 1000).  On a backend the tick drives
                            idle eviction and the checkpoint sweep; on a
                            router it drives the health probes, so a smaller
                            value detects a dead backend sooner
    --state-dir <DIR>       checkpoint sessions to RVSE envelope files in DIR
                            (created if missing): periodic sweeps, spill
                            instead of destroy on idle eviction, recovery of
                            every checkpoint at boot.  Not valid with --router
    --checkpoint-interval <SECONDS>
                            cadence of the periodic checkpoint sweep
                            (default 5; 0 sweeps on every housekeeping tick;
                            needs --state-dir)
    --checkpoint-dirty-cycles <N>
                            also checkpoint a session synchronously once it
                            runs N cycles past its last checkpoint (default
                            0 = periodic sweeps only; needs --state-dir)
    --slow-request-us <N>   journal any request whose end-to-end time
                            reaches N microseconds (default 100000 = 100 ms;
                            0 journals every request).  The journal is read
                            back with GET /admin/trace or `rvsim-cli tail`
    --help                  show this help

The protocol endpoint is POST /api with a JSON request body; the response
body is the encoded payload (one flag byte, then plain or LZSS-compressed
JSON — the same wire format SimulationServer::decode_response parses).
";

/// Parsed options of the `serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeCliOptions {
    /// Serve over TCP (must be set; reserves room for future transports).
    pub tcp: bool,
    /// Bind address.
    pub addr: String,
    /// Event-loop threads.
    pub event_loops: usize,
    /// Dispatch worker threads.
    pub dispatch_workers: usize,
    /// Live-connection cap.
    pub max_connections: usize,
    /// Pending-dispatch queue bound.
    pub pending: usize,
    /// Compress response payloads.
    pub compress: bool,
    /// Idle-session TTL in seconds (`None` disables eviction).
    pub idle_ttl_seconds: Option<u64>,
    /// Housekeeping-tick cadence in milliseconds (eviction + checkpoint
    /// sweeps on a backend, health probes on a router).
    pub housekeeping_ms: u64,
    /// Router mode: backend addresses to consistent-hash sessions across
    /// (empty = run a simulation node, not a router).
    pub router_backends: Vec<std::net::SocketAddr>,
    /// Checkpoint directory (`None` disables durability).
    pub state_dir: Option<String>,
    /// Periodic checkpoint-sweep cadence in seconds (0 = every tick).
    pub checkpoint_interval_seconds: f64,
    /// Dirty-cycle checkpoint threshold (0 = periodic sweeps only).
    pub checkpoint_dirty_cycles: u64,
    /// Slow-request journaling threshold in microseconds (0 journals every
    /// request).
    pub slow_request_us: u64,
}

impl Default for ServeCliOptions {
    fn default() -> Self {
        ServeCliOptions {
            tcp: false,
            addr: "127.0.0.1:8911".to_string(),
            event_loops: 2,
            dispatch_workers: 4,
            max_connections: 16 * 1024,
            pending: 1024,
            compress: true,
            idle_ttl_seconds: None,
            housekeeping_ms: 1000,
            router_backends: Vec::new(),
            state_dir: None,
            checkpoint_interval_seconds: 5.0,
            checkpoint_dirty_cycles: 0,
            slow_request_us: rvsim_obs::DEFAULT_SLOW_REQUEST_US,
        }
    }
}

impl ServeCliOptions {
    /// Parse the arguments following the `serve` subcommand word.
    pub fn parse(args: &[String]) -> Result<ServeCliOptions, String> {
        let mut options = ServeCliOptions::default();
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--tcp" => options.tcp = true,
                "--addr" => options.addr = value(&mut i, "--addr")?,
                "--event-loops" => {
                    let v = value(&mut i, "--event-loops")?;
                    options.event_loops = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid event-loop count `{v}`"))?;
                }
                "--dispatch-workers" => {
                    let v = value(&mut i, "--dispatch-workers")?;
                    options.dispatch_workers = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid worker count `{v}`"))?;
                }
                "--max-connections" => {
                    let v = value(&mut i, "--max-connections")?;
                    options.max_connections = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid connection cap `{v}`"))?;
                }
                "--pending" => {
                    let v = value(&mut i, "--pending")?;
                    options.pending = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid queue bound `{v}`"))?;
                }
                "--no-compress" => options.compress = false,
                "--router" => {
                    let v = value(&mut i, "--router")?;
                    options.router_backends = v
                        .split(',')
                        .map(|part| {
                            part.trim()
                                .parse::<std::net::SocketAddr>()
                                .map_err(|_| format!("invalid backend address `{part}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if options.router_backends.is_empty() {
                        return Err("--router needs at least one backend".to_string());
                    }
                }
                "--idle-ttl" => {
                    let v = value(&mut i, "--idle-ttl")?;
                    options.idle_ttl_seconds =
                        Some(v.parse().map_err(|_| format!("invalid TTL `{v}`"))?);
                }
                "--housekeeping-ms" => {
                    let v = value(&mut i, "--housekeeping-ms")?;
                    options.housekeeping_ms = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid housekeeping cadence `{v}`"))?;
                }
                "--state-dir" => options.state_dir = Some(value(&mut i, "--state-dir")?),
                "--checkpoint-interval" => {
                    let v = value(&mut i, "--checkpoint-interval")?;
                    options.checkpoint_interval_seconds = v
                        .parse()
                        .ok()
                        .filter(|f: &f64| f.is_finite() && *f >= 0.0)
                        .ok_or_else(|| format!("invalid checkpoint interval `{v}`"))?;
                }
                "--checkpoint-dirty-cycles" => {
                    let v = value(&mut i, "--checkpoint-dirty-cycles")?;
                    options.checkpoint_dirty_cycles =
                        v.parse().map_err(|_| format!("invalid cycle threshold `{v}`"))?;
                }
                "--slow-request-us" => {
                    let v = value(&mut i, "--slow-request-us")?;
                    options.slow_request_us =
                        v.parse().map_err(|_| format!("invalid slow-request threshold `{v}`"))?;
                }
                "--help" | "-h" => return Err(SERVE_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{SERVE_USAGE}")),
            }
            i += 1;
        }
        if !options.tcp {
            return Err(format!("serve requires --tcp\n\n{SERVE_USAGE}"));
        }
        if options.state_dir.is_some() && !options.router_backends.is_empty() {
            return Err(format!(
                "--state-dir is a backend option; a router holds no sessions\n\n{SERVE_USAGE}"
            ));
        }
        Ok(options)
    }
}

/// Start the network front end described by `options`: a simulation node,
/// or — with `--router` — a router tier over the given backends.  Returns
/// the running server (the binary parks on it until killed; tests shut it
/// down).
pub fn start_serve(options: &ServeCliOptions) -> Result<rvsim_net::NetServer, String> {
    let net_config = rvsim_net::NetConfig {
        addr: options.addr.clone(),
        event_loops: options.event_loops,
        dispatch_workers: options.dispatch_workers,
        max_connections: options.max_connections,
        pending_dispatch: options.pending,
        housekeeping_interval: std::time::Duration::from_millis(options.housekeeping_ms),
        slow_request_us: options.slow_request_us,
        ..rvsim_net::NetConfig::default()
    };
    if !options.router_backends.is_empty() {
        let router = rvsim_net::Router::new(options.router_backends.clone());
        return rvsim_net::NetServer::start_with_handler(std::sync::Arc::new(router), net_config)
            .map_err(|e| format!("cannot bind `{}`: {e}", options.addr));
    }
    let deployment = rvsim_server::DeploymentConfig {
        mode: rvsim_server::DeploymentMode::Direct,
        compress_responses: options.compress,
        worker_threads: 4,
        idle_session_ttl_seconds: options.idle_ttl_seconds,
    };
    let server = match &options.state_dir {
        Some(dir) => {
            let checkpoints = rvsim_server::CheckpointConfig {
                state_dir: std::path::PathBuf::from(dir),
                interval: std::time::Duration::from_secs_f64(options.checkpoint_interval_seconds),
                dirty_cycles: options.checkpoint_dirty_cycles,
            };
            let server = rvsim_server::SimulationServer::with_checkpoints(deployment, checkpoints)
                .map_err(|e| format!("cannot open state dir `{dir}`: {e}"))?;
            let (_, failures) = server.recover_checkpoints();
            for (session, error) in &failures {
                eprintln!("warning: session {session} refused to restore: {error}");
            }
            server
        }
        None => rvsim_server::SimulationServer::new(deployment),
    };
    rvsim_net::NetServer::start(server, net_config)
        .map_err(|e| format!("cannot bind `{}`: {e}", options.addr))
}

// ---------------------------------------------------------------------------
// `chaos` subcommand: deterministic fault-injecting TCP proxy.
// ---------------------------------------------------------------------------

/// Usage string of the `chaos` subcommand.
pub const CHAOS_USAGE: &str = "\
rvsim-cli chaos — deterministic fault-injecting TCP proxy: put it between
               a client (or router) and a backend to rehearse crashes

USAGE:
    rvsim-cli chaos --upstream <IP:PORT> [OPTIONS]

OPTIONS:
    --upstream <IP:PORT>    backend to proxy to (mandatory)
    --listen <IP:PORT>      listen address (default 127.0.0.1:0 — a free
                            port, printed at startup)
    --seed <N>              fault-stream seed; the same seed injects the
                            same fault on the same connection index, every
                            run (default 0)
    --reset <P>             probability a connection is reset before any
                            byte is proxied (default 0)
    --truncate <P>          probability a response stream is cut after a
                            random prefix inside the first KiB (default 0)
    --delay <P>             probability each proxied chunk is delayed
                            (default 0)
    --max-delay-ms <N>      upper bound of one injected delay (default 50)
    --help                  show this help

Faults are drawn per accepted connection from seed and connection index
only, so a failing sequence replays exactly under the same seed.
";

/// Parsed options of the `chaos` subcommand.
#[derive(Debug, Clone)]
pub struct ChaosCliOptions {
    /// Backend to proxy to.
    pub upstream: std::net::SocketAddr,
    /// Listen address.
    pub listen: String,
    /// Fault-stream seed.
    pub seed: u64,
    /// Connection-reset probability.
    pub reset_probability: f64,
    /// Response-truncation probability.
    pub truncate_probability: f64,
    /// Per-chunk delay probability.
    pub delay_probability: f64,
    /// Upper bound of one injected delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl ChaosCliOptions {
    /// Parse the arguments following the `chaos` subcommand word.
    pub fn parse(args: &[String]) -> Result<ChaosCliOptions, String> {
        let mut upstream = None;
        let mut options = ChaosCliOptions {
            upstream: "127.0.0.1:0".parse().expect("literal address"),
            listen: "127.0.0.1:0".to_string(),
            seed: 0,
            reset_probability: 0.0,
            truncate_probability: 0.0,
            delay_probability: 0.0,
            max_delay_ms: 50,
        };
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        let probability = |v: String, flag: &str| -> Result<f64, String> {
            v.parse()
                .ok()
                .filter(|p: &f64| p.is_finite() && (0.0..=1.0).contains(p))
                .ok_or_else(|| format!("invalid probability `{v}` for {flag} (want 0..=1)"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--upstream" => {
                    let v = value(&mut i, "--upstream")?;
                    upstream =
                        Some(v.parse().map_err(|_| format!("invalid upstream address `{v}`"))?);
                }
                "--listen" => options.listen = value(&mut i, "--listen")?,
                "--seed" => {
                    let v = value(&mut i, "--seed")?;
                    options.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
                }
                "--reset" => {
                    options.reset_probability = probability(value(&mut i, "--reset")?, "--reset")?;
                }
                "--truncate" => {
                    options.truncate_probability =
                        probability(value(&mut i, "--truncate")?, "--truncate")?;
                }
                "--delay" => {
                    options.delay_probability = probability(value(&mut i, "--delay")?, "--delay")?;
                }
                "--max-delay-ms" => {
                    let v = value(&mut i, "--max-delay-ms")?;
                    options.max_delay_ms =
                        v.parse().map_err(|_| format!("invalid delay bound `{v}`"))?;
                }
                "--help" | "-h" => return Err(CHAOS_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{CHAOS_USAGE}")),
            }
            i += 1;
        }
        options.upstream =
            upstream.ok_or_else(|| format!("--upstream is mandatory\n\n{CHAOS_USAGE}"))?;
        Ok(options)
    }
}

/// Start the chaos proxy described by `options`.  Returns the running proxy
/// (the binary parks on it until killed; tests shut it down).
pub fn start_chaos(options: &ChaosCliOptions) -> Result<rvsim_net::ChaosProxy, String> {
    let config = rvsim_net::ChaosConfig {
        listen: options.listen.clone(),
        upstream: options.upstream,
        seed: options.seed,
        reset_probability: options.reset_probability,
        truncate_probability: options.truncate_probability,
        delay_probability: options.delay_probability,
        max_delay_ms: options.max_delay_ms,
    };
    rvsim_net::ChaosProxy::start(config)
        .map_err(|e| format!("cannot bind `{}`: {e}", options.listen))
}

// ---------------------------------------------------------------------------
// `drain` subcommand: live-migrate a backend's sessions off through a router.
// ---------------------------------------------------------------------------

/// Usage string of the `drain` subcommand.
pub const DRAIN_USAGE: &str = "\
rvsim-cli drain — live-drain one backend of a running router tier
               (serialize every session on it, restore each on its new
                ring owner, flip the ring; clients only see latency)

USAGE:
    rvsim-cli drain --router <IP:PORT> --backend <N>

OPTIONS:
    --router <IP:PORT>      address of the router front end (mandatory)
    --backend <N>           index of the backend to drain, in the order the
                            router was started with (mandatory)
    --format <text|json>    output format (default text)
    --help                  show this help

Exit status is 1 when the drain is refused (unknown backend, already
draining, last backend standing) or any session fails to migrate.
";

/// Parsed options of the `drain` subcommand.
#[derive(Debug, Clone)]
pub struct DrainCliOptions {
    /// Router front-end address.
    pub router: std::net::SocketAddr,
    /// Backend index to drain.
    pub backend: usize,
    /// Output format.
    pub format: OutputFormat,
}

impl DrainCliOptions {
    /// Parse the arguments following the `drain` subcommand word.
    pub fn parse(args: &[String]) -> Result<DrainCliOptions, String> {
        let mut router = None;
        let mut backend = None;
        let mut format = OutputFormat::Text;
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--router" => {
                    let v = value(&mut i, "--router")?;
                    router = Some(v.parse().map_err(|_| format!("invalid router address `{v}`"))?);
                }
                "--backend" => {
                    let v = value(&mut i, "--backend")?;
                    backend = Some(v.parse().map_err(|_| format!("invalid backend index `{v}`"))?);
                }
                "--format" => {
                    let v = value(&mut i, "--format")?;
                    format = match v.as_str() {
                        "text" => OutputFormat::Text,
                        "json" => OutputFormat::Json,
                        other => return Err(format!("unknown format `{other}`")),
                    };
                }
                "--help" | "-h" => return Err(DRAIN_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{DRAIN_USAGE}")),
            }
            i += 1;
        }
        Ok(DrainCliOptions {
            router: router.ok_or_else(|| format!("--router is mandatory\n\n{DRAIN_USAGE}"))?,
            backend: backend.ok_or_else(|| format!("--backend is mandatory\n\n{DRAIN_USAGE}"))?,
            format,
        })
    }
}

/// Run the `drain` subcommand: POST the drain order to the router and render
/// its report.  A refused drain or a failed migration is an `Err`.
pub fn run_drain(options: &DrainCliOptions) -> Result<String, String> {
    let body = format!(r#"{{"backend":{}}}"#, options.backend);
    let (status, response) = rvsim_net::http_post(
        options.router,
        "/admin/drain",
        body.as_bytes(),
        std::time::Duration::from_secs(120),
    )
    .map_err(|e| format!("cannot reach router at {}: {e}", options.router))?;
    if status != 200 {
        return Err(format!(
            "drain refused ({status}): {}",
            String::from_utf8_lossy(&response).trim()
        ));
    }
    let report: rvsim_net::DrainReport =
        serde_json::from_slice(&response).map_err(|e| format!("unparseable drain report: {e}"))?;
    let text = match options.format {
        OutputFormat::Json => {
            let mut out = serde_json::to_string_pretty(&report).expect("drain report serializes");
            out.push('\n');
            out
        }
        OutputFormat::Text => {
            let mut out = format!(
                "drained backend {}: {}/{} sessions migrated\n",
                report.backend, report.migrated, report.sessions
            );
            for (session, error) in &report.failed {
                out.push_str(&format!("  session {session} FAILED: {error}\n"));
            }
            out
        }
    };
    if report.failed.is_empty() {
        Ok(text)
    } else {
        Err(text)
    }
}

// ---------------------------------------------------------------------------
// `loadgen` subcommand: closed-loop cached-GetState load against a front end.
// ---------------------------------------------------------------------------

/// Usage string of the `loadgen` subcommand.
pub const LOADGEN_USAGE: &str = "\
rvsim-cli loadgen — closed-loop cached-GetState load against a running
               front end (a simulation node or a router tier)

USAGE:
    rvsim-cli loadgen --addr <IP:PORT> [OPTIONS]

OPTIONS:
    --addr <IP:PORT>        front end to drive (mandatory)
    --sessions <N>          sessions to create and cycle over (default 8)
    --threads <N>           concurrent client connections (default 4)
    --seconds <F>           measurement window (default 5)
    --error-budget <RATIO>  tolerate errors up to this error ratio,
                            errors / (requests + errors) — for chaos runs
                            where a bounded burst is the expected outcome
                            (default 0: any error fails)
    --format <text|json>    output format (default text)
    --help                  show this help

Creates the sessions, steps each once to warm the serve cache, then hammers
GetState from every thread until the window closes.  Exit status is 1 when
the error ratio exceeds the budget — the loadgen doubles as the
router-smoke and chaos-smoke check in CI.
";

/// Parsed options of the `loadgen` subcommand.
#[derive(Debug, Clone)]
pub struct LoadgenCliOptions {
    /// Front-end address to drive.
    pub addr: std::net::SocketAddr,
    /// Sessions to create.
    pub sessions: usize,
    /// Concurrent client connections.
    pub threads: usize,
    /// Measurement window in seconds.
    pub seconds: f64,
    /// Largest tolerated error ratio (`errors / (requests + errors)`).
    pub error_budget: f64,
    /// Output format.
    pub format: OutputFormat,
}

impl LoadgenCliOptions {
    /// Parse the arguments following the `loadgen` subcommand word.
    pub fn parse(args: &[String]) -> Result<LoadgenCliOptions, String> {
        let mut addr = None;
        let mut error_budget = 0.0f64;
        let mut options = (8usize, 4usize, 5.0f64, OutputFormat::Text);
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--addr" => {
                    let v = value(&mut i, "--addr")?;
                    addr = Some(v.parse().map_err(|_| format!("invalid address `{v}`"))?);
                }
                "--sessions" => {
                    let v = value(&mut i, "--sessions")?;
                    options.0 = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid session count `{v}`"))?;
                }
                "--threads" => {
                    let v = value(&mut i, "--threads")?;
                    options.1 = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid thread count `{v}`"))?;
                }
                "--seconds" => {
                    let v = value(&mut i, "--seconds")?;
                    options.2 = v
                        .parse()
                        .ok()
                        .filter(|f: &f64| f.is_finite() && *f > 0.0)
                        .ok_or_else(|| format!("invalid window `{v}`"))?;
                }
                "--error-budget" => {
                    let v = value(&mut i, "--error-budget")?;
                    error_budget = v
                        .parse()
                        .ok()
                        .filter(|f: &f64| f.is_finite() && (0.0..=1.0).contains(f))
                        .ok_or_else(|| format!("invalid error budget `{v}` (want 0..=1)"))?;
                }
                "--format" => {
                    let v = value(&mut i, "--format")?;
                    options.3 = match v.as_str() {
                        "text" => OutputFormat::Text,
                        "json" => OutputFormat::Json,
                        other => return Err(format!("unknown format `{other}`")),
                    };
                }
                "--help" | "-h" => return Err(LOADGEN_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{LOADGEN_USAGE}")),
            }
            i += 1;
        }
        Ok(LoadgenCliOptions {
            addr: addr.ok_or_else(|| format!("--addr is mandatory\n\n{LOADGEN_USAGE}"))?,
            sessions: options.0,
            threads: options.1,
            seconds: options.2,
            error_budget,
            format: options.3,
        })
    }
}

/// Run the `loadgen` subcommand.  Any failed request is an `Err` so the
/// binary exits non-zero.
pub fn run_loadgen(options: &LoadgenCliOptions) -> Result<String, String> {
    let mut client = rvsim_net::TcpApiClient::new(options.addr);
    let mut ids = Vec::with_capacity(options.sessions);
    for _ in 0..options.sessions {
        match client.call(&rvsim_server::Request::CreateSession {
            program: rvsim_loadgen::sample_program_loop(),
            architecture: None,
            entry: None,
            session: None,
        })? {
            rvsim_server::Response::SessionCreated { session } => ids.push(session),
            other => return Err(format!("unexpected create response {other:?}")),
        }
        let session = *ids.last().expect("just pushed");
        match client.call(&rvsim_server::Request::Step { session, cycles: 8 })? {
            rvsim_server::Response::Stepped { .. } => {}
            other => return Err(format!("unexpected step response {other:?}")),
        }
    }
    let report = rvsim_loadgen::run_cached_state_fanout(
        &[(options.addr, ids)],
        options.threads,
        std::time::Duration::from_secs_f64(options.seconds),
    );
    let text = match options.format {
        OutputFormat::Json => {
            let value = serde_json::json!({
                "sessions": options.sessions,
                "threads": options.threads,
                "requests": report.requests,
                "errors": report.errors,
                "error_ratio": report.error_ratio(),
                "errors_by_second": report.errors_by_second,
                "wall_seconds": report.wall_seconds,
                "requests_per_second": report.rps(),
            });
            let mut out = serde_json::to_string_pretty(&value).expect("report serializes");
            out.push('\n');
            out
        }
        OutputFormat::Text => format!(
            "{} requests in {:.2}s over {} threads × {} sessions: {:.0} req/s, {} errors \
             (ratio {:.4}, budget {:.4})\n",
            report.requests,
            report.wall_seconds,
            options.threads,
            options.sessions,
            report.rps(),
            report.errors,
            report.error_ratio(),
            options.error_budget
        ),
    };
    if report.error_ratio() <= options.error_budget {
        Ok(text)
    } else {
        Err(text)
    }
}

// ---------------------------------------------------------------------------
// `tail` / `top` subcommands: the observability read side.  `tail` follows
// the in-memory event journal through GET /admin/trace; `top` polls
// GET /metrics and renders a live dashboard from the parsed exposition.
// ---------------------------------------------------------------------------

/// Usage string of the `tail` subcommand.
pub const TAIL_USAGE: &str = "\
rvsim-cli tail — follow the event journal of a running front end
               (GET /admin/trace, NDJSON, one event per line)

USAGE:
    rvsim-cli tail --addr <IP:PORT> [OPTIONS]

OPTIONS:
    --addr <IP:PORT>        front end to follow (mandatory; a simulation
                            node or a router — each has its own journal)
    --n <N>                 newest events to fetch per poll (default 256)
    --min-us <N>            only events whose duration reached N
                            microseconds; events without a duration pass
                            only when the filter is 0 (default 0)
    --interval-ms <N>       poll cadence in milliseconds (default 1000)
    --once                  print one batch and exit instead of following
    --help                  show this help

Each line is one JSON event with a monotone `seq`; the follower remembers
the highest sequence printed and emits only newer events, so a quiet
journal prints nothing.  Per-request events appear when a request was slow
(see `serve --slow-request-us`) or failed; connection, checkpoint, breaker
and failover events are always journaled.
";

/// Parsed options of the `tail` subcommand.
#[derive(Debug, Clone)]
pub struct TailCliOptions {
    /// Front-end address to follow.
    pub addr: std::net::SocketAddr,
    /// Newest events to fetch per poll.
    pub n: usize,
    /// Duration filter in microseconds.
    pub min_us: u64,
    /// Poll cadence in milliseconds.
    pub interval_ms: u64,
    /// Print one batch and exit.
    pub once: bool,
}

impl TailCliOptions {
    /// Parse the arguments following the `tail` subcommand word.
    pub fn parse(args: &[String]) -> Result<TailCliOptions, String> {
        let mut addr = None;
        let (mut n, mut min_us, mut interval_ms, mut once) = (256usize, 0u64, 1000u64, false);
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--addr" => {
                    let v = value(&mut i, "--addr")?;
                    addr = Some(v.parse().map_err(|_| format!("invalid address `{v}`"))?);
                }
                "--n" => {
                    let v = value(&mut i, "--n")?;
                    n = v
                        .parse()
                        .ok()
                        .filter(|&x| x > 0)
                        .ok_or_else(|| format!("invalid event count `{v}`"))?;
                }
                "--min-us" => {
                    let v = value(&mut i, "--min-us")?;
                    min_us = v.parse().map_err(|_| format!("invalid duration filter `{v}`"))?;
                }
                "--interval-ms" => {
                    let v = value(&mut i, "--interval-ms")?;
                    interval_ms = v
                        .parse()
                        .ok()
                        .filter(|&x| x > 0)
                        .ok_or_else(|| format!("invalid poll cadence `{v}`"))?;
                }
                "--once" => once = true,
                "--help" | "-h" => return Err(TAIL_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{TAIL_USAGE}")),
            }
            i += 1;
        }
        Ok(TailCliOptions {
            addr: addr.ok_or_else(|| format!("--addr is mandatory\n\n{TAIL_USAGE}"))?,
            n,
            min_us,
            interval_ms,
            once,
        })
    }
}

/// Fetch one `/admin/trace` page and keep only events newer than
/// `last_seq`.  Returns the fresh NDJSON lines (oldest first) and the new
/// high-water mark.
pub fn tail_fetch(
    addr: std::net::SocketAddr,
    n: usize,
    min_us: u64,
    last_seq: Option<u64>,
) -> Result<(Vec<String>, Option<u64>), String> {
    let target = format!("/admin/trace?n={n}&min_us={min_us}");
    let (status, body) = rvsim_net::http_get(addr, &target, std::time::Duration::from_secs(10))
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if status != 200 {
        return Err(format!("GET {target} answered {status}"));
    }
    let text = String::from_utf8_lossy(&body);
    let mut high = last_seq;
    let mut fresh = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let seq = trace_line_seq(line).ok_or_else(|| format!("unparseable trace line `{line}`"))?;
        if last_seq.is_none_or(|printed| seq > printed) {
            fresh.push(line.to_string());
        }
        high = Some(high.map_or(seq, |h| h.max(seq)));
    }
    Ok((fresh, high))
}

/// The `seq` field of one NDJSON trace line.
fn trace_line_seq(line: &str) -> Option<u64> {
    let value: serde_json::Value = serde_json::from_str(line).ok()?;
    value.get("seq")?.as_u64()
}

/// Run the `tail` subcommand: poll the journal and print events newer than
/// the last poll, forever (or once with `--once`).
pub fn run_tail(options: &TailCliOptions) -> Result<(), String> {
    let mut last_seq = None;
    loop {
        let (lines, high) = tail_fetch(options.addr, options.n, options.min_us, last_seq)?;
        for line in &lines {
            println!("{line}");
        }
        last_seq = high;
        if options.once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(options.interval_ms));
    }
}

/// Usage string of the `top` subcommand.
pub const TOP_USAGE: &str = "\
rvsim-cli top — live terminal dashboard over a running front end's
               GET /metrics (Prometheus 0.0.4 text exposition)

USAGE:
    rvsim-cli top --addr <IP:PORT> [OPTIONS]

OPTIONS:
    --addr <IP:PORT>        front end to watch (mandatory; a simulation
                            node shows endpoint and phase tables, a router
                            additionally shows per-backend upstream health)
    --interval-ms <N>       refresh cadence in milliseconds (default 1000)
    --once                  print one frame and exit — doubles as the CI
                            exposition check: the poll fails (exit 1) when
                            the scrape is not valid 0.0.4 exposition
    --help                  show this help

The request rate is the rvsim_http_requests_total delta between frames
(first frame: lifetime average).  Latency quantiles are estimated from the
cumulative histogram buckets in the exposition itself, so `top` sees
exactly what any Prometheus scraper would.
";

/// Parsed options of the `top` subcommand.
#[derive(Debug, Clone)]
pub struct TopCliOptions {
    /// Front-end address to watch.
    pub addr: std::net::SocketAddr,
    /// Refresh cadence in milliseconds.
    pub interval_ms: u64,
    /// Print one frame and exit.
    pub once: bool,
}

impl TopCliOptions {
    /// Parse the arguments following the `top` subcommand word.
    pub fn parse(args: &[String]) -> Result<TopCliOptions, String> {
        let mut addr = None;
        let (mut interval_ms, mut once) = (1000u64, false);
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--addr" => {
                    let v = value(&mut i, "--addr")?;
                    addr = Some(v.parse().map_err(|_| format!("invalid address `{v}`"))?);
                }
                "--interval-ms" => {
                    let v = value(&mut i, "--interval-ms")?;
                    interval_ms = v
                        .parse()
                        .ok()
                        .filter(|&x| x > 0)
                        .ok_or_else(|| format!("invalid refresh cadence `{v}`"))?;
                }
                "--once" => once = true,
                "--help" | "-h" => return Err(TOP_USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{TOP_USAGE}")),
            }
            i += 1;
        }
        Ok(TopCliOptions {
            addr: addr.ok_or_else(|| format!("--addr is mandatory\n\n{TOP_USAGE}"))?,
            interval_ms,
            once,
        })
    }
}

/// Scrape and validate one exposition from `addr`'s `/metrics`.
pub fn fetch_metrics(addr: std::net::SocketAddr) -> Result<Vec<rvsim_obs::MetricFamily>, String> {
    let (status, body) = rvsim_net::http_get(addr, "/metrics", std::time::Duration::from_secs(10))
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics answered {status}"));
    }
    let text = String::from_utf8(body).map_err(|_| "metrics body is not UTF-8".to_string())?;
    rvsim_obs::validate_exposition(&text).map_err(|e| format!("invalid exposition: {e}"))
}

/// The value of the first sample named exactly `name` (the bare-series
/// form counters and gauges use), across all families.
fn metric_value(families: &[rvsim_obs::MetricFamily], name: &str) -> Option<f64> {
    families
        .iter()
        .flat_map(|f| &f.samples)
        .find(|s| s.name == name && s.labels.iter().all(|(k, _)| k == "le"))
        .map(|s| s.value)
}

/// Estimate quantile `q` of the histogram family `family`, over the series
/// whose labels include every `(key, value)` in `labels`.  Works from the
/// cumulative `_bucket` samples exactly as a Prometheus `histogram_quantile`
/// would: linear interpolation inside the winning bucket, the lower bound
/// for the `+Inf` bucket.  Returns the unit the exposition uses (seconds).
pub fn parsed_histogram_quantile(
    family: &rvsim_obs::MetricFamily,
    labels: &[(&str, &str)],
    q: f64,
) -> Option<f64> {
    let bucket_name = format!("{}_bucket", family.name);
    let mut buckets: Vec<(f64, f64)> = family
        .samples
        .iter()
        .filter(|s| s.name == bucket_name)
        .filter(|s| labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
        .filter_map(|s| {
            let le = s.label("le")?;
            let bound = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
            Some((bound, s.value))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bucket bounds are never NaN"));
    let total = buckets.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * total).max(1.0);
    let (mut lower_bound, mut below) = (0.0, 0.0);
    for &(bound, cumulative) in &buckets {
        if rank <= cumulative {
            if bound.is_infinite() {
                return Some(lower_bound);
            }
            let in_bucket = (cumulative - below).max(1.0);
            return Some(lower_bound + (rank - below) / in_bucket * (bound - lower_bound));
        }
        (lower_bound, below) = (bound, cumulative);
    }
    Some(lower_bound)
}

/// The `_count` of the histogram series in `family` matching `labels`.
fn histogram_count(family: &rvsim_obs::MetricFamily, labels: &[(&str, &str)]) -> f64 {
    let count_name = format!("{}_count", family.name);
    family
        .samples
        .iter()
        .find(|s| s.name == count_name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
        .map_or(0.0, |s| s.value)
}

/// Distinct values of `label` across a histogram family's `_count` series,
/// in exposition order — the row keys of a dashboard table.
fn histogram_label_values(family: &rvsim_obs::MetricFamily, label: &str) -> Vec<String> {
    let count_name = format!("{}_count", family.name);
    let mut values = Vec::new();
    for sample in family.samples.iter().filter(|s| s.name == count_name) {
        if let Some(v) = sample.label(label) {
            if !values.iter().any(|seen| seen == v) {
                values.push(v.to_string());
            }
        }
    }
    values
}

/// Append one labeled histogram family as a `count / p50 / p99` table.
fn render_histogram_table(
    out: &mut String,
    families: &[rvsim_obs::MetricFamily],
    family_name: &str,
    label: &str,
    heading: &str,
) {
    let Some(family) = families.iter().find(|f| f.name == family_name) else {
        return;
    };
    let rows = histogram_label_values(family, label);
    if rows.is_empty() {
        return;
    }
    out.push_str(&format!(
        "\n  {heading:<14} {:>12}  {:>10}  {:>10}\n",
        "count", "p50 ms", "p99 ms"
    ));
    for row in rows {
        let selector = [(label, row.as_str())];
        let count = histogram_count(family, &selector);
        let p50 = parsed_histogram_quantile(family, &selector, 0.50).unwrap_or(0.0);
        let p99 = parsed_histogram_quantile(family, &selector, 0.99).unwrap_or(0.0);
        out.push_str(&format!(
            "  {row:<14} {count:>12.0}  {:>10.3}  {:>10.3}\n",
            p50 * 1e3,
            p99 * 1e3
        ));
    }
}

/// Render one dashboard frame from a validated exposition.
/// `requests_per_second` comes from the caller's counter delta; `None`
/// prints `-`.
pub fn render_top(
    addr: &str,
    families: &[rvsim_obs::MetricFamily],
    requests_per_second: Option<f64>,
) -> String {
    let value = |name: &str| metric_value(families, name);
    let mut out = format!("rvsim top — {addr}\n");
    let uptime = value("rvsim_uptime_seconds").unwrap_or(0.0);
    let rate = requests_per_second.map_or("-".to_string(), |r| format!("{r:.0}"));
    out.push_str(&format!(
        "  uptime {uptime:.0}s   requests {:.0} ({rate} req/s)   errors {:.0}   open conns {:.0}\n",
        value("rvsim_http_requests_total").unwrap_or(0.0),
        value("rvsim_http_errors_total").unwrap_or(0.0),
        value("rvsim_connections_open").unwrap_or(0.0),
    ));
    out.push_str(&format!(
        "  accepted {:.0}   rejected {:.0}   dispatch rejected {:.0}   journal events {:.0}\n",
        value("rvsim_connections_accepted_total").unwrap_or(0.0),
        value("rvsim_connections_rejected_total").unwrap_or(0.0),
        value("rvsim_dispatch_rejected_total").unwrap_or(0.0),
        value("rvsim_journal_events_total").unwrap_or(0.0),
    ));
    if let Some(live) =
        value("rvsim_sessions_live").or_else(|| value("rvsim_upstream_sessions_live"))
    {
        out.push_str(&format!(
            "  sessions {live:.0}   evicted {:.0}   coalesced steps {:.0}   shared GetState {:.0}\n",
            value("rvsim_sessions_evicted_total")
                .or_else(|| value("rvsim_upstream_sessions_evicted_total"))
                .unwrap_or(0.0),
            value("rvsim_steps_coalesced_total")
                .or_else(|| value("rvsim_upstream_steps_coalesced_total"))
                .unwrap_or(0.0),
            value("rvsim_getstate_shared_total")
                .or_else(|| value("rvsim_upstream_getstate_shared_total"))
                .unwrap_or(0.0),
        ));
    }
    if let Some(backends) = value("rvsim_router_backends") {
        out.push_str(&format!(
            "  router: {:.0}/{backends:.0} backends alive, {:.0} forwarded, {:.0} upstream errors, \
             {:.0} sessions recovered\n",
            value("rvsim_router_backends_alive").unwrap_or(0.0),
            value("rvsim_router_requests_forwarded_total").unwrap_or(0.0),
            value("rvsim_router_upstream_errors_total").unwrap_or(0.0),
            value("rvsim_router_sessions_recovered_total").unwrap_or(0.0),
        ));
    }
    render_histogram_table(&mut out, families, "rvsim_request_phase_seconds", "phase", "phase");
    render_histogram_table(&mut out, families, "rvsim_endpoint_seconds", "endpoint", "endpoint");
    render_histogram_table(
        &mut out,
        families,
        "rvsim_upstream_endpoint_seconds",
        "endpoint",
        "endpoint",
    );
    render_histogram_table(
        &mut out,
        families,
        "rvsim_router_upstream_seconds",
        "backend",
        "backend",
    );
    out
}

/// Run the `top` subcommand: scrape, validate, render, repeat — or render
/// one frame with `--once` (the CI exposition check).
pub fn run_top(options: &TopCliOptions) -> Result<(), String> {
    let mut previous: Option<(std::time::Instant, f64)> = None;
    loop {
        let families = fetch_metrics(options.addr)?;
        let now = std::time::Instant::now();
        let total = metric_value(&families, "rvsim_http_requests_total").unwrap_or(0.0);
        let rate = match previous {
            Some((then, before)) => {
                let dt = now.duration_since(then).as_secs_f64();
                (dt > 0.0).then(|| (total - before).max(0.0) / dt)
            }
            None => metric_value(&families, "rvsim_uptime_seconds")
                .filter(|&uptime| uptime > 0.0)
                .map(|uptime| total / uptime),
        };
        previous = Some((now, total));
        let frame = render_top(&options.addr.to_string(), &families, rate);
        if options.once {
            print!("{frame}");
            return Ok(());
        }
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(options.interval_ms));
    }
}

fn parse_fault(spec: &str) -> Result<rvsim_iss::InjectedFault, String> {
    let (mnemonic, bits) = match spec.split_once(':') {
        Some((m, x)) => {
            let hex = x.trim().trim_start_matches("0x");
            let bits = u64::from_str_radix(hex, 16)
                .map_err(|_| format!("invalid fault bits `{x}` (expected hex)"))?;
            (m, bits)
        }
        None => (spec, 1),
    };
    if mnemonic.trim().is_empty() {
        return Err("fault mnemonic must not be empty".to_string());
    }
    Ok(rvsim_iss::InjectedFault { mnemonic: mnemonic.trim().to_string(), xor_bits: bits })
}

/// Resolve the configurations a cosim invocation covers: a custom `--arch`
/// file runs alone; by default the batch co-verifies the single-issue
/// scalar preset, the default 2-wide machine every plain user gets, and the
/// 4-wide / deep-ROB `wide-4` preset — the same machines the throughput
/// benchmark measures.
fn cosim_configs(options: &CosimCliOptions) -> Result<Vec<ArchitectureConfig>, String> {
    match &options.arch_path {
        Some(path) => {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            Ok(vec![ArchitectureConfig::from_json(&json)?])
        }
        // The throughput benchmark's preset matrix, so the batch always
        // co-verifies exactly the machines the bench measures.
        None => Ok(rvsim_bench::pipeline_bench_configs()),
    }
}

fn cosim_harness(
    config: &ArchitectureConfig,
    options: &CosimCliOptions,
) -> Result<rvsim_iss::Cosim, String> {
    let mut harness = rvsim_iss::Cosim::new(config.clone());
    harness.max_cycles = options.max_cycles;
    harness.max_steps = options.max_cycles;
    if let Some(spec) = &options.inject_fault {
        harness.fault = Some(parse_fault(spec)?);
    }
    Ok(harness)
}

/// Run the `cosim` subcommand.  Returns the report text; divergences (and
/// generator errors) on any configuration are returned as `Err` so the
/// binary exits non-zero.
pub fn run_cosim(options: &CosimCliOptions) -> Result<String, String> {
    let configs = cosim_configs(options)?;
    let gen = rvsim_iss::GenOptions {
        body_instructions: options.instructions,
        dp_ops: options.dfp,
        ..Default::default()
    };

    // Replay mode: one exact program from a printed per-program seed.
    if let Some(program_seed) = options.program_seed {
        return run_cosim_replay(&configs, options, program_seed, &gen);
    }

    // The batch matrix: every configuration with the base generator, plus —
    // in the default (no --arch) run, unless the base generator is already
    // D-enabled — one D-heavy batch on the default machine, so the
    // double-precision paths stay differentially covered by default.
    let mut entries: Vec<(String, ArchitectureConfig, rvsim_iss::GenOptions)> =
        configs.iter().map(|c| (c.name.clone(), c.clone(), gen.clone())).collect();
    if options.arch_path.is_none() && !options.dfp {
        let d_gen = rvsim_iss::GenOptions {
            body_instructions: options.instructions,
            ..rvsim_iss::GenOptions::d_heavy()
        };
        let config = ArchitectureConfig::default();
        entries.push((format!("{}+dfp", config.name), config, d_gen));
    }

    let mut reports: Vec<(String, rvsim_iss::BatchReport)> = Vec::new();
    let mut all_ok = true;
    for (label, config, gen) in &entries {
        let harness = cosim_harness(config, options)?;
        let report = harness.run_batch(options.seed, options.programs, gen);
        // A batch that matched nothing (every program inconclusive) provides
        // no differential coverage; fail loudly instead of letting CI go
        // green.
        all_ok &= report.divergences.is_empty() && report.errors.is_empty() && report.matched > 0;
        reports.push((label.clone(), report));
    }

    let text = match options.format {
        OutputFormat::Text => {
            let mut out = String::new();
            for (name, report) in &reports {
                out.push_str(&format!("[{name}] "));
                out.push_str(&report.render_text());
                if !out.ends_with('\n') {
                    out.push('\n');
                }
            }
            out
        }
        OutputFormat::Json => {
            let configs_json: Vec<serde_json::Value> = reports
                .iter()
                .map(|(name, report)| serde_json::json!({ "config": name, "report": report }))
                .collect();
            let value = serde_json::json!({
                "batch_seed": options.seed,
                "programs": options.programs,
                "configs": configs_json,
            });
            let mut out = serde_json::to_string_pretty(&value).expect("batch report serializes");
            out.push('\n');
            out
        }
    };
    if all_ok {
        Ok(text)
    } else {
        Err(text)
    }
}

fn run_cosim_replay(
    configs: &[ArchitectureConfig],
    options: &CosimCliOptions,
    program_seed: u64,
    gen: &rvsim_iss::GenOptions,
) -> Result<String, String> {
    let source = rvsim_iss::generate_program(program_seed, gen);
    let mut all_match = true;
    let mut texts = Vec::new();
    let mut jsons = Vec::new();

    for config in configs {
        // Replay under the same seed-derived memory timings the batch used,
        // so a printed seed reproduces the exact run.
        let harness =
            cosim_harness(config, options)?.with_timings(rvsim_iss::timings_for_seed(program_seed));
        let name = config.name.as_str();
        let outcome = harness.run_source(&source)?;

        // Shrink first so both output formats can include the reproducer.
        let shrunk = match &outcome {
            rvsim_iss::CosimOutcome::Divergence(divergence) => Some(
                harness.shrink(&source).unwrap_or_else(|| (source.clone(), (**divergence).clone())),
            ),
            _ => None,
        };

        match &outcome {
            rvsim_iss::CosimOutcome::Match { retired } => {
                texts.push(format!(
                    "[{name}] cosim replay: program seed {program_seed} matches ({retired} \
                     instructions co-verified)\n"
                ));
                jsons.push(serde_json::json!({
                    "config": name,
                    "outcome": "match",
                    "retired": retired,
                }));
            }
            rvsim_iss::CosimOutcome::Inconclusive { reason } => {
                all_match = false;
                texts.push(format!(
                    "[{name}] cosim replay: program seed {program_seed} inconclusive: {reason} \
                     (raise --max-cycles)\n"
                ));
                jsons.push(serde_json::json!({
                    "config": name,
                    "outcome": "inconclusive",
                    "reason": reason,
                }));
            }
            rvsim_iss::CosimOutcome::Divergence(divergence) => {
                all_match = false;
                let (shrunk_program, shrunk_div) = shrunk.as_ref().expect("shrunk above");
                texts.push(format!(
                    "[{name}] cosim replay: program seed {program_seed} diverges:\n{}\n\
                     --- shrunk reproducer ({}) ---\n{}",
                    divergence.report, shrunk_div.summary, shrunk_program
                ));
                jsons.push(serde_json::json!({
                    "config": name,
                    "outcome": "divergence",
                    "divergence": divergence,
                    "shrunk_program": shrunk_program,
                    "shrunk_summary": shrunk_div.summary,
                }));
            }
        }
    }

    let text = match options.format {
        OutputFormat::Json => {
            let value = serde_json::json!({
                "mode": "replay",
                "program_seed": program_seed,
                "configs": jsons,
            });
            let mut out = serde_json::to_string_pretty(&value).expect("replay report serializes");
            out.push('\n');
            out
        }
        OutputFormat::Text => texts.concat(),
    };
    if all_match {
        Ok(text)
    } else {
        Err(text)
    }
}

/// Run the CLI against already-loaded inputs (program source + optional
/// architecture JSON + optional memory CSV).  Returns the report text.
pub fn run_with_sources(
    options: &CliOptions,
    program_source: &str,
    arch_json: Option<&str>,
    memory_csv: Option<&str>,
) -> Result<String, String> {
    let config = match arch_json {
        Some(json) => ArchitectureConfig::from_json(json)?,
        None => ArchitectureConfig::default(),
    };

    // Optional C compilation step.
    let assembly = if options.compile_c {
        let output = rvsim_cc::compile(program_source, options.opt_level).map_err(|errors| {
            errors.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n")
        })?;
        output.assembly
    } else {
        program_source.to_string()
    };

    let memory_settings = match memory_csv {
        Some(csv) => MemorySettings::from_csv(csv)?,
        None => MemorySettings::new(),
    };

    let mut simulator = Simulator::from_assembly_with_memory(&assembly, &config, memory_settings)?;
    if let Some(entry) = &options.entry {
        let mut program = simulator.program().clone();
        if !program.set_entry(entry) {
            return Err(format!("entry label `{entry}` not found"));
        }
        simulator = Simulator::with_memory(program, &config, MemorySettings::new())?;
    }

    let result = simulator.run(options.max_cycles)?;
    let stats = simulator.statistics();

    let mut out = String::new();
    match options.format {
        OutputFormat::Json => {
            let value = serde_json::json!({
                "halt": halt_name(&result.halt),
                "cycles": result.cycles,
                "registers": {
                    "a0": simulator.int_register(10),
                    "a1": simulator.int_register(11),
                },
                "statistics": stats,
            });
            out.push_str(&serde_json::to_string_pretty(&value).expect("stats serialize"));
            out.push('\n');
        }
        OutputFormat::Text => {
            out.push_str(&format!("architecture:           {}\n", config.name));
            out.push_str(&format!("halt reason:            {}\n", halt_name(&result.halt)));
            out.push_str(&format!("a0 (return value):      {}\n", simulator.int_register(10)));
            out.push_str(&stats.report());
        }
    }

    if let Some((addr, len)) = options.dump_memory {
        out.push_str("--- memory dump ---\n");
        out.push_str(&simulator.memory().memory().hex_dump(addr, len));
    }
    if options.verbose {
        out.push_str("--- debug log ---\n");
        for entry in simulator.log().entries() {
            out.push_str(&format!("[{:>8}] {}\n", entry.cycle, entry.message));
        }
    }
    Ok(out)
}

/// Run the CLI by reading the files referenced in `options`.
pub fn run(options: &CliOptions) -> Result<String, String> {
    let program = std::fs::read_to_string(&options.program_path)
        .map_err(|e| format!("cannot read `{}`: {e}", options.program_path))?;
    let arch = match &options.arch_path {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?)
        }
        None => None,
    };
    let memory = match &options.memory_csv {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?)
        }
        None => None,
    };
    run_with_sources(options, &program, arch.as_deref(), memory.as_deref())
}

fn halt_name(halt: &HaltReason) -> String {
    match halt {
        HaltReason::PipelineEmpty => "pipeline empty".to_string(),
        HaltReason::MainReturned => "main returned".to_string(),
        HaltReason::Exception(e) => format!("exception: {e}"),
        HaltReason::MaxCyclesReached => "cycle budget exhausted".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 10
loop:
    addi t0, t0, 2
    addi t1, t1, -1
    bnez t1, loop
    mv   a0, t0
    ret
";

    #[test]
    fn parse_full_argument_set() {
        let o = CliOptions::parse(&args(&[
            "--program",
            "prog.s",
            "--arch",
            "arch.json",
            "--entry",
            "start",
            "--max-cycles",
            "5000",
            "--format",
            "json",
            "--verbose",
            "--memory",
            "mem.csv",
            "--dump-memory",
            "0x1000,64",
        ]))
        .unwrap();
        assert_eq!(o.program_path, "prog.s");
        assert_eq!(o.arch_path.as_deref(), Some("arch.json"));
        assert_eq!(o.entry.as_deref(), Some("start"));
        assert_eq!(o.max_cycles, 5000);
        assert_eq!(o.format, OutputFormat::Json);
        assert!(o.verbose);
        assert_eq!(o.memory_csv.as_deref(), Some("mem.csv"));
        assert_eq!(o.dump_memory, Some((0x1000, 64)));
    }

    #[test]
    fn parse_errors() {
        assert!(CliOptions::parse(&args(&[])).is_err());
        assert!(CliOptions::parse(&args(&["--program"])).is_err());
        assert!(CliOptions::parse(&args(&["--program", "x.s", "--format", "xml"])).is_err());
        assert!(CliOptions::parse(&args(&["--program", "x.s", "--wat"])).is_err());
        assert!(CliOptions::parse(&args(&["--help"])).is_err());
        assert!(CliOptions::parse(&args(&["--program", "x.s", "--opt", "9"])).is_err());
        assert!(CliOptions::parse(&args(&["--program", "x.s", "--dump-memory", "12"])).is_err());
    }

    #[test]
    fn text_report_contains_statistics() {
        let options =
            CliOptions { program_path: "prog.s".into(), max_cycles: 100_000, ..Default::default() };
        let out = run_with_sources(&options, PROGRAM, None, None).unwrap();
        assert!(out.contains("a0 (return value):      20"));
        assert!(out.contains("IPC:"));
        assert!(out.contains("dynamic instruction mix"));
    }

    #[test]
    fn json_report_is_valid_json() {
        let options = CliOptions {
            program_path: "prog.s".into(),
            max_cycles: 100_000,
            format: OutputFormat::Json,
            ..Default::default()
        };
        let out = run_with_sources(&options, PROGRAM, None, None).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["registers"]["a0"], 20);
        assert_eq!(value["halt"], "main returned");
        assert!(value["statistics"]["committed"].as_u64().unwrap() > 20);
    }

    #[test]
    fn custom_architecture_json_is_honoured() {
        let mut config = ArchitectureConfig::scalar();
        config.name = "cli-test-arch".into();
        let options =
            CliOptions { program_path: "prog.s".into(), max_cycles: 100_000, ..Default::default() };
        let out = run_with_sources(&options, PROGRAM, Some(&config.to_json()), None).unwrap();
        assert!(out.contains("cli-test-arch"));
        assert!(run_with_sources(&options, PROGRAM, Some("{broken"), None).is_err());
    }

    #[test]
    fn c_compilation_path() {
        let options = CliOptions {
            program_path: "prog.c".into(),
            compile_c: true,
            opt_level: OptLevel::O2,
            max_cycles: 1_000_000,
            ..Default::default()
        };
        let source =
            "int main(void) { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }";
        let out = run_with_sources(&options, source, None, None).unwrap();
        assert!(out.contains("a0 (return value):      55"));
        let bad = run_with_sources(&options, "int main(void) { return 1 + ; }", None, None);
        assert!(bad.is_err());
    }

    #[test]
    fn memory_csv_arrays_are_available() {
        let options =
            CliOptions { program_path: "prog.s".into(), max_cycles: 100_000, ..Default::default() };
        let program = "
main:
    la   t0, input
    lw   a0, 0(t0)
    lw   a1, 4(t0)
    add  a0, a0, a1
    ret
";
        let csv = "name,type,index,value\ninput,word,0,11\ninput,word,1,31\n";
        let out = run_with_sources(&options, program, None, Some(csv)).unwrap();
        assert!(out.contains("a0 (return value):      42"));
    }

    #[test]
    fn memory_dump_and_verbose_log() {
        let options = CliOptions {
            program_path: "prog.s".into(),
            max_cycles: 100_000,
            dump_memory: Some((0, 16)),
            verbose: true,
            ..Default::default()
        };
        let out = run_with_sources(&options, PROGRAM, None, None).unwrap();
        assert!(out.contains("--- memory dump ---"));
        assert!(out.contains("--- debug log ---"));
        assert!(out.contains("simulation finished"));
    }

    #[test]
    fn cosim_options_parse() {
        let o = CosimCliOptions::parse(&args(&[
            "--programs",
            "50",
            "--seed",
            "0x2a",
            "--instructions",
            "24",
            "--max-cycles",
            "90000",
            "--format",
            "json",
            "--inject-fault",
            "xor:0x10",
        ]))
        .unwrap();
        assert_eq!(o.programs, 50);
        assert_eq!(o.seed, 42);
        assert_eq!(o.instructions, 24);
        assert_eq!(o.max_cycles, 90_000);
        assert_eq!(o.format, OutputFormat::Json);
        assert_eq!(o.inject_fault.as_deref(), Some("xor:0x10"));

        let defaults = CosimCliOptions::parse(&args(&[])).unwrap();
        assert_eq!(defaults.programs, 200);
        assert_eq!(defaults.seed, 42);
        assert!(!defaults.dfp);
        assert!(CosimCliOptions::parse(&args(&["--dfp"])).unwrap().dfp);

        assert!(CosimCliOptions::parse(&args(&["--programs", "0"])).is_err());
        assert!(CosimCliOptions::parse(&args(&["--bogus"])).is_err());
        assert!(CosimCliOptions::parse(&args(&["--help"])).unwrap_err().contains("cosim"));
    }

    #[test]
    fn bench_options_parse() {
        let defaults = BenchCliOptions::parse(&args(&[])).unwrap();
        assert!(!defaults.json);
        assert!(!defaults.server);
        assert_eq!(defaults.out_path(), "BENCH_pipeline.json");
        assert!((defaults.min_seconds - 0.2).abs() < 1e-12);
        assert_eq!(defaults.users, vec![1, 8, 32]);

        let o =
            BenchCliOptions::parse(&args(&["--out", "x.json", "--min-seconds", "0.01"])).unwrap();
        assert!(o.json, "--out implies --json");
        assert_eq!(o.out_path(), "x.json");

        let s =
            BenchCliOptions::parse(&args(&["--server", "--time-scale", "0.5", "--users", "2,4"]))
                .unwrap();
        assert!(s.server);
        assert_eq!(s.out_path(), "BENCH_server.json");
        assert!((s.time_scale - 0.5).abs() < 1e-12);
        assert_eq!(s.users, vec![2, 4]);
        assert!(s.high_connections.is_empty(), "sweep is opt-in");

        let h = BenchCliOptions::parse(&args(&["--server", "--high-connections", "100, 1000"]))
            .unwrap();
        assert_eq!(h.high_connections, vec![100, 1000]);
        assert!(BenchCliOptions::parse(&args(&["--high-connections", "0"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--high-connections", "x"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--high-connections"])).is_err());

        assert!(BenchCliOptions::parse(&args(&["--min-seconds", "zz"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--min-seconds", "-1"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--min-seconds", "inf"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--min-seconds", "NaN"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--time-scale", "-2"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--users", "0"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--users", "x"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--bogus"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--help"])).unwrap_err().contains("bench"));

        assert!(!defaults.durability, "the kill scenario is opt-in");
        let d = BenchCliOptions::parse(&args(&["--server", "--durability"])).unwrap();
        assert!(d.durability);
    }

    #[test]
    fn bench_run_writes_machine_readable_report() {
        let dir = std::env::temp_dir().join(format!("rvsim-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_pipeline.json");
        let options = BenchCliOptions {
            json: true,
            out: Some(out.to_string_lossy().into_owned()),
            min_seconds: 0.0,
            ..Default::default()
        };
        let text = run_bench(&options).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value["benchmark"], "pipeline_throughput");
        let samples = value["samples"].as_array().unwrap();
        // 5 workloads × 3 configurations.
        assert_eq!(samples.len(), 15);
        assert!(samples.iter().any(|s| s["workload"] == "quicksort"));
        assert!(value["geomean_retired_per_second"].as_f64().unwrap() > 0.0);
        // The file on disk is the same report.
        let on_disk = std::fs::read_to_string(&out).unwrap();
        assert_eq!(on_disk, text);
        std::fs::remove_dir_all(&dir).ok();

        // Text mode renders a table and does not touch the filesystem.
        let table = run_bench(&BenchCliOptions { min_seconds: 0.0, ..Default::default() }).unwrap();
        assert!(table.contains("retired/s"));
        assert!(table.contains("quicksort"));
    }

    #[test]
    fn server_bench_writes_machine_readable_report() {
        let dir = std::env::temp_dir().join(format!("rvsim-sbench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_server.json");
        let options = BenchCliOptions {
            json: true,
            out: Some(out.to_string_lossy().into_owned()),
            min_seconds: 0.0,
            server: true,
            time_scale: 0.0,
            users: vec![2],
            high_connections: Vec::new(),
            multi_node: Vec::new(),
            durability: false,
        };
        let text = run_bench(&options).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value["benchmark"], "server_request");
        let raw = value["raw"].as_array().unwrap();
        // 2 scenarios × compression on/off.
        assert_eq!(raw.len(), 4);
        assert!(raw.iter().any(|s| s["scenario"] == "get_state" && s["compressed"] == true));
        assert!(value["headline_get_state_rps"].as_f64().unwrap() > 0.0);
        assert!(!value["load"].as_array().unwrap().is_empty());
        assert!(std::path::Path::new(&out).exists());
        std::fs::remove_dir_all(&dir).ok();

        // Text mode renders the request-path table.
        let table = run_bench(&BenchCliOptions {
            min_seconds: 0.0,
            server: true,
            time_scale: 0.0,
            users: vec![1],
            ..Default::default()
        })
        .unwrap();
        assert!(table.contains("get_state"));
        assert!(table.contains("load test"));
    }

    #[test]
    fn serve_banner_parses_back_to_an_address() {
        let addr = parse_serve_banner(
            "rvsim-net listening on http://127.0.0.1:8911 (POST /api, GET /metrics, GET /healthz)\n",
        )
        .unwrap();
        assert_eq!(addr, "127.0.0.1:8911".parse().unwrap());
        assert!(parse_serve_banner("cannot bind").is_err());
        assert!(parse_serve_banner("listening on http://not-an-addr oops").is_err());
    }

    #[test]
    fn high_connection_sweep_runs_in_process() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping sweep test: loopback unavailable");
            return;
        }
        let base = rvsim_loadgen::HighConnectionOptions {
            target_rps: 400.0,
            warmup: std::time::Duration::from_millis(50),
            duration: std::time::Duration::from_millis(400),
            sessions: 2,
            ..Default::default()
        };
        // 16 and 32 connections stay far inside the fd budget, so this
        // exercises the in-process server path end to end.
        let reports = run_high_connection_sweep(&[16, 32], &base).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].connections, 16);
        assert_eq!(reports[1].connections, 32);
        for r in &reports {
            assert_eq!(r.errors, 0, "sweep request failed");
            assert!(r.transactions > 0);
        }
    }

    #[test]
    fn serve_options_parse() {
        assert!(ServeCliOptions::parse(&args(&[])).is_err(), "--tcp is mandatory");
        assert!(ServeCliOptions::parse(&args(&["--help"])).unwrap_err().contains("serve"));
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--bogus"])).is_err());
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--event-loops", "0"])).is_err());
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--dispatch-workers", "0"])).is_err());
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--max-connections", "0"])).is_err());
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--idle-ttl", "x"])).is_err());

        let o = ServeCliOptions::parse(&args(&[
            "--tcp",
            "--addr",
            "127.0.0.1:0",
            "--event-loops",
            "1",
            "--dispatch-workers",
            "8",
            "--max-connections",
            "500",
            "--pending",
            "16",
            "--no-compress",
            "--idle-ttl",
            "30",
        ]))
        .unwrap();
        assert!(o.tcp);
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.event_loops, 1);
        assert_eq!(o.dispatch_workers, 8);
        assert_eq!(o.max_connections, 500);
        assert_eq!(o.pending, 16);
        assert!(!o.compress);
        assert_eq!(o.idle_ttl_seconds, Some(30));
        assert_eq!(o.state_dir, None, "durability is opt-in");
        assert_eq!(o.housekeeping_ms, 1000, "default tick is one second");

        let hk = ServeCliOptions::parse(&args(&["--tcp", "--housekeeping-ms", "250"])).unwrap();
        assert_eq!(hk.housekeeping_ms, 250);
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--housekeeping-ms", "0"])).is_err());

        let d = ServeCliOptions::parse(&args(&[
            "--tcp",
            "--state-dir",
            "/tmp/rvsim-state",
            "--checkpoint-interval",
            "0.5",
            "--checkpoint-dirty-cycles",
            "1000",
        ]))
        .unwrap();
        assert_eq!(d.state_dir.as_deref(), Some("/tmp/rvsim-state"));
        assert!((d.checkpoint_interval_seconds - 0.5).abs() < 1e-12);
        assert_eq!(d.checkpoint_dirty_cycles, 1000);
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--checkpoint-interval", "-1"])).is_err());
        assert!(
            ServeCliOptions::parse(&args(&["--tcp", "--checkpoint-dirty-cycles", "x"])).is_err()
        );
        let router_with_state = ServeCliOptions::parse(&args(&[
            "--tcp",
            "--router",
            "127.0.0.1:1",
            "--state-dir",
            "/tmp/x",
        ]));
        assert!(router_with_state.is_err(), "a router holds no sessions to checkpoint");

        let defaults = ServeCliOptions::parse(&args(&["--tcp"])).unwrap();
        assert_eq!(defaults.slow_request_us, rvsim_obs::DEFAULT_SLOW_REQUEST_US);
        let slow = ServeCliOptions::parse(&args(&["--tcp", "--slow-request-us", "0"])).unwrap();
        assert_eq!(slow.slow_request_us, 0, "0 journals every request");
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--slow-request-us", "x"])).is_err());
    }

    #[test]
    fn chaos_options_parse() {
        assert!(ChaosCliOptions::parse(&args(&[])).is_err(), "--upstream is mandatory");
        assert!(ChaosCliOptions::parse(&args(&["--help"])).unwrap_err().contains("chaos"));
        assert!(ChaosCliOptions::parse(&args(&["--upstream", "nope"])).is_err());
        assert!(
            ChaosCliOptions::parse(&args(&["--upstream", "127.0.0.1:1", "--reset", "2"])).is_err()
        );
        assert!(ChaosCliOptions::parse(&args(&["--upstream", "127.0.0.1:1", "--delay", "-0.5"]))
            .is_err());

        let o = ChaosCliOptions::parse(&args(&[
            "--upstream",
            "127.0.0.1:9000",
            "--listen",
            "127.0.0.1:9001",
            "--seed",
            "7",
            "--reset",
            "0.25",
            "--truncate",
            "0.5",
            "--delay",
            "1",
            "--max-delay-ms",
            "20",
        ]))
        .unwrap();
        assert_eq!(o.upstream, "127.0.0.1:9000".parse().unwrap());
        assert_eq!(o.listen, "127.0.0.1:9001");
        assert_eq!(o.seed, 7);
        assert!((o.reset_probability - 0.25).abs() < 1e-12);
        assert!((o.truncate_probability - 0.5).abs() < 1e-12);
        assert!((o.delay_probability - 1.0).abs() < 1e-12);
        assert_eq!(o.max_delay_ms, 20);
    }

    #[test]
    fn serve_with_state_dir_survives_a_restart() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping durable-serve test: loopback unavailable");
            return;
        }
        let dir = std::env::temp_dir().join(format!("rvsim-cli-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = ServeCliOptions {
            tcp: true,
            addr: "127.0.0.1:0".to_string(),
            state_dir: Some(dir.to_string_lossy().into_owned()),
            checkpoint_interval_seconds: 0.0,
            ..ServeCliOptions::default()
        };

        // First life: create a session, step it, checkpoint, die.
        let first = start_serve(&options).expect("durable serve starts");
        let mut client = rvsim_net::TcpApiClient::new(first.local_addr());
        let session = match client
            .call(&rvsim_server::Request::CreateSession {
                program: PROGRAM.into(),
                architecture: None,
                entry: None,
                session: None,
            })
            .unwrap()
        {
            rvsim_server::Response::SessionCreated { session } => session,
            other => panic!("unexpected {other:?}"),
        };
        let stepped = client.call(&rvsim_server::Request::Step { session, cycles: 4 }).unwrap();
        assert!(matches!(stepped, rvsim_server::Response::Stepped { cycle: 4, .. }));
        assert_eq!(first.server().checkpoint_dirty_sessions(), 1);
        first.shutdown();

        // Second life on the same state dir: the session is back, at the
        // checkpointed cycle, and keeps stepping.
        let second = start_serve(&options).expect("durable serve restarts");
        assert_eq!(second.server().restored_session_count(), 1, "boot recovery re-owned it");
        let mut client = rvsim_net::TcpApiClient::new(second.local_addr());
        match client.call(&rvsim_server::Request::GetState { session }).unwrap() {
            rvsim_server::Response::State(snapshot) => assert_eq!(snapshot.cycle, 4),
            other => panic!("unexpected {other:?}"),
        }
        let stepped = client.call(&rvsim_server::Request::Step { session, cycles: 2 }).unwrap();
        assert!(matches!(stepped, rvsim_server::Response::Stepped { cycle: 6, .. }));
        second.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_starts_a_reachable_front_end() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping serve test: loopback unavailable");
            return;
        }
        let options = ServeCliOptions {
            tcp: true,
            addr: "127.0.0.1:0".to_string(),
            ..ServeCliOptions::default()
        };
        let server = start_serve(&options).expect("serve starts");
        let mut client = rvsim_net::TcpApiClient::new(server.local_addr());
        let created = client
            .call(&rvsim_server::Request::CreateSession {
                program: PROGRAM.into(),
                architecture: None,
                entry: None,
                session: None,
            })
            .unwrap();
        assert!(matches!(created, rvsim_server::Response::SessionCreated { .. }));
        server.shutdown();

        // A taken port reports a bind error instead of panicking.
        let holder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let taken = holder.local_addr().unwrap().to_string();
        let bad = ServeCliOptions { addr: taken, ..options };
        assert!(start_serve(&bad).is_err());
    }

    #[test]
    fn router_serve_drain_and_loadgen_work_end_to_end() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping router CLI test: loopback unavailable");
            return;
        }
        let backend_options = ServeCliOptions {
            tcp: true,
            addr: "127.0.0.1:0".to_string(),
            ..ServeCliOptions::default()
        };
        let b0 = start_serve(&backend_options).expect("backend 0 starts");
        let b1 = start_serve(&backend_options).expect("backend 1 starts");
        let router_options = ServeCliOptions {
            router_backends: vec![b0.local_addr(), b1.local_addr()],
            ..backend_options
        };
        let router = start_serve(&router_options).expect("router starts");
        let addr = router.local_addr();

        // The loadgen creates, warms and hammers sessions through the router.
        let loadgen = LoadgenCliOptions {
            addr,
            sessions: 6,
            threads: 2,
            seconds: 0.3,
            error_budget: 0.0,
            format: OutputFormat::Json,
        };
        let out = run_loadgen(&loadgen).expect("load run is clean");
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["errors"], 0);
        assert!(value["requests"].as_u64().unwrap() > 0);

        // Drain backend 0 through the CLI path and verify the report.
        let drain = DrainCliOptions { router: addr, backend: 0, format: OutputFormat::Json };
        let out = run_drain(&drain).expect("drain succeeds");
        let report: rvsim_net::DrainReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.backend, 0);
        assert_eq!(report.migrated, report.sessions);
        assert!(report.failed.is_empty());
        assert_eq!(b0.server().session_count(), 0, "backend 0 drained");
        assert_eq!(b1.server().session_count(), 6, "backend 1 took every session");

        // A second drain is refused and surfaces as a non-zero exit.
        assert!(run_drain(&drain).is_err());

        router.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn tail_and_top_options_parse() {
        assert!(TailCliOptions::parse(&args(&[])).is_err(), "--addr is mandatory");
        assert!(TailCliOptions::parse(&args(&["--help"])).unwrap_err().contains("tail"));
        assert!(TailCliOptions::parse(&args(&["--addr", "nope"])).is_err());
        assert!(TailCliOptions::parse(&args(&["--addr", "127.0.0.1:1", "--n", "0"])).is_err());
        let t = TailCliOptions::parse(&args(&[
            "--addr",
            "127.0.0.1:9000",
            "--n",
            "32",
            "--min-us",
            "500",
            "--interval-ms",
            "250",
            "--once",
        ]))
        .unwrap();
        assert_eq!(t.addr, "127.0.0.1:9000".parse().unwrap());
        assert_eq!(t.n, 32);
        assert_eq!(t.min_us, 500);
        assert_eq!(t.interval_ms, 250);
        assert!(t.once);
        let defaults = TailCliOptions::parse(&args(&["--addr", "127.0.0.1:1"])).unwrap();
        assert_eq!((defaults.n, defaults.min_us, defaults.interval_ms), (256, 0, 1000));
        assert!(!defaults.once);

        assert!(TopCliOptions::parse(&args(&[])).is_err(), "--addr is mandatory");
        assert!(TopCliOptions::parse(&args(&["--help"])).unwrap_err().contains("top"));
        assert!(
            TopCliOptions::parse(&args(&["--addr", "127.0.0.1:1", "--interval-ms", "0"])).is_err()
        );
        let o = TopCliOptions::parse(&args(&["--addr", "127.0.0.1:9000", "--once"])).unwrap();
        assert_eq!(o.addr, "127.0.0.1:9000".parse().unwrap());
        assert_eq!(o.interval_ms, 1000);
        assert!(o.once);
    }

    #[test]
    fn parsed_histogram_quantile_reads_cumulative_buckets() {
        // 10 observations: 5 in (0, 0.001], 4 in (0.001, 0.01], 1 overflow.
        let exposition = "\
# TYPE demo_seconds histogram
demo_seconds_bucket{endpoint=\"step\",le=\"0.001\"} 5
demo_seconds_bucket{endpoint=\"step\",le=\"0.01\"} 9
demo_seconds_bucket{endpoint=\"step\",le=\"+Inf\"} 10
demo_seconds_sum{endpoint=\"step\"} 0.5
demo_seconds_count{endpoint=\"step\"} 10
";
        let families = rvsim_obs::validate_exposition(exposition).unwrap();
        let family = families.iter().find(|f| f.name == "demo_seconds").unwrap();
        let selector = [("endpoint", "step")];
        assert_eq!(histogram_count(family, &selector), 10.0);
        assert_eq!(histogram_label_values(family, "endpoint"), vec!["step".to_string()]);

        // p50 lands exactly on the first bucket's upper bound (rank 5 of 5).
        let p50 = parsed_histogram_quantile(family, &selector, 0.50).unwrap();
        assert!((p50 - 0.001).abs() < 1e-9, "p50 {p50}");
        // p90 is rank 9 — the top of the second bucket.
        let p90 = parsed_histogram_quantile(family, &selector, 0.90).unwrap();
        assert!((p90 - 0.01).abs() < 1e-9, "p90 {p90}");
        // p99 falls in the +Inf bucket: clamped to the last finite bound.
        let p99 = parsed_histogram_quantile(family, &selector, 0.99).unwrap();
        assert!((p99 - 0.01).abs() < 1e-9, "p99 {p99}");
        // A selector that matches nothing yields no estimate.
        assert!(parsed_histogram_quantile(family, &[("endpoint", "nope")], 0.5).is_none());
    }

    #[test]
    fn tail_and_top_observe_a_live_front_end() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping tail/top test: loopback unavailable");
            return;
        }
        // Threshold 0: every request is journaled, so the tail sees traffic
        // without needing an artificially slow handler.
        let options = ServeCliOptions {
            tcp: true,
            addr: "127.0.0.1:0".to_string(),
            slow_request_us: 0,
            ..ServeCliOptions::default()
        };
        let server = start_serve(&options).expect("serve starts");
        let addr = server.local_addr();
        let mut client = rvsim_net::TcpApiClient::new(addr);
        let session = match client
            .call(&rvsim_server::Request::CreateSession {
                program: PROGRAM.into(),
                architecture: None,
                entry: None,
                session: None,
            })
            .unwrap()
        {
            rvsim_server::Response::SessionCreated { session } => session,
            other => panic!("unexpected {other:?}"),
        };
        for _ in 0..4 {
            let r = client.call(&rvsim_server::Request::Step { session, cycles: 1 }).unwrap();
            assert!(matches!(r, rvsim_server::Response::Stepped { .. }));
        }

        // First fetch sees the journaled requests; every line carries a
        // request id and the four phase timings.
        let (lines, high) = tail_fetch(addr, 256, 0, None).expect("trace fetch");
        assert!(lines.len() >= 5, "expected the five requests, got {lines:?}");
        assert!(high.is_some());
        // Threshold 0 classifies every request as "slow", so the per-request
        // events arrive under the slow_request kind.
        let request_lines: Vec<&String> =
            lines.iter().filter(|l| l.contains("\"event\":\"slow_request\"")).collect();
        assert!(!request_lines.is_empty(), "{lines:?}");
        for line in &request_lines {
            assert!(line.contains("\"request_id\":\""), "{line}");
            assert!(line.contains("\"phases_us\":{"), "{line}");
        }
        // Sequences are strictly increasing within one fetch.
        let seqs: Vec<u64> = lines.iter().map(|l| trace_line_seq(l).unwrap()).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
        // The next poll never reprints: only events newer than the high-water
        // mark appear (the poll's own connection open/close — polling is
        // itself journaled traffic — but none of the already-seen requests).
        let (fresh, resumed) = tail_fetch(addr, 256, 0, high).expect("second fetch");
        assert!(
            fresh.iter().all(|l| trace_line_seq(l).unwrap() > high.unwrap()),
            "reprinted an old event: {fresh:?}"
        );
        assert!(
            !fresh.iter().any(|l| l.contains("\"event\":\"slow_request\"")),
            "no request ran between polls, but got {fresh:?}"
        );
        assert!(resumed >= high);
        // An aggressive duration filter drops the sub-millisecond requests.
        let (slow_only, _) = tail_fetch(addr, 256, 60_000_000, None).expect("filtered fetch");
        assert!(slow_only.is_empty(), "nothing took a minute: {slow_only:?}");

        // The dashboard sees the same traffic through /metrics.
        let families = fetch_metrics(addr).expect("valid exposition");
        let frame = render_top(&addr.to_string(), &families, Some(123.0));
        assert!(frame.contains("rvsim top"), "{frame}");
        assert!(frame.contains("123 req/s"), "{frame}");
        assert!(frame.contains("endpoint"), "{frame}");
        assert!(frame.contains("step"), "{frame}");
        assert!(frame.contains("phase"), "{frame}");
        assert!(frame.contains("handler"), "{frame}");
        let endpoint_family = families.iter().find(|f| f.name == "rvsim_endpoint_seconds").unwrap();
        assert!(histogram_count(endpoint_family, &[("endpoint", "step")]) >= 4.0);
        assert!(parsed_histogram_quantile(endpoint_family, &[("endpoint", "step")], 0.99).is_some());

        server.shutdown();
    }

    #[test]
    fn router_drain_and_loadgen_options_parse() {
        let o =
            ServeCliOptions::parse(&args(&["--tcp", "--router", "127.0.0.1:9001, 127.0.0.1:9002"]))
                .unwrap();
        assert_eq!(o.router_backends.len(), 2);
        assert!(ServeCliOptions::parse(&args(&["--tcp", "--router", "nope"])).is_err());

        let d = DrainCliOptions::parse(&args(&[
            "--router",
            "127.0.0.1:9000",
            "--backend",
            "1",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(d.backend, 1);
        assert_eq!(d.format, OutputFormat::Json);
        assert!(DrainCliOptions::parse(&args(&["--backend", "1"])).is_err());
        assert!(DrainCliOptions::parse(&args(&["--router", "127.0.0.1:9000"])).is_err());
        assert!(DrainCliOptions::parse(&args(&["--help"])).unwrap_err().contains("drain"));

        let l = LoadgenCliOptions::parse(&args(&[
            "--addr",
            "127.0.0.1:9000",
            "--sessions",
            "12",
            "--threads",
            "3",
            "--seconds",
            "1.5",
        ]))
        .unwrap();
        assert_eq!((l.sessions, l.threads), (12, 3));
        assert!((l.seconds - 1.5).abs() < 1e-12);
        assert!((l.error_budget - 0.0).abs() < 1e-12, "zero tolerance by default");
        assert!(LoadgenCliOptions::parse(&args(&[])).is_err(), "--addr is mandatory");
        assert!(LoadgenCliOptions::parse(&args(&["--addr", "x", "--sessions", "0"])).is_err());
        assert!(LoadgenCliOptions::parse(&args(&["--help"])).unwrap_err().contains("loadgen"));
        let budget = LoadgenCliOptions::parse(&args(&[
            "--addr",
            "127.0.0.1:9000",
            "--error-budget",
            "0.05",
        ]))
        .unwrap();
        assert!((budget.error_budget - 0.05).abs() < 1e-12);
        assert!(LoadgenCliOptions::parse(&args(&[
            "--addr",
            "127.0.0.1:9000",
            "--error-budget",
            "1.5"
        ]))
        .is_err());

        let b = BenchCliOptions::parse(&args(&["--server", "--multi-node", "1,2,4"])).unwrap();
        assert_eq!(b.multi_node, vec![1, 2, 4]);
        assert!(BenchCliOptions::parse(&args(&["--multi-node", "0"])).is_err());
        assert!(BenchCliOptions::parse(&args(&["--multi-node", ""])).is_err());
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(
            parse_fault("xor").unwrap(),
            rvsim_iss::InjectedFault { mnemonic: "xor".into(), xor_bits: 1 }
        );
        assert_eq!(
            parse_fault("addi:0x80").unwrap(),
            rvsim_iss::InjectedFault { mnemonic: "addi".into(), xor_bits: 0x80 }
        );
        assert!(parse_fault("addi:zz").is_err());
        assert!(parse_fault(":1").is_err());
    }

    #[test]
    fn cosim_batch_matches_and_injected_fault_fails() {
        let options =
            CosimCliOptions { programs: 8, seed: 42, instructions: 16, ..Default::default() };
        let out = run_cosim(&options).expect("clean batch must succeed");
        assert!(out.contains("8 programs"));
        assert!(out.contains("0 divergences"), "output:\n{out}");

        let faulty = CosimCliOptions {
            inject_fault: Some("addi".into()),
            programs: 2,
            instructions: 8,
            ..options
        };
        let report = run_cosim(&faulty).expect_err("fault must be detected");
        assert!(report.contains("shrunk reproducer"), "report:\n{report}");
        assert!(report.contains("addi"), "report:\n{report}");
    }

    #[test]
    fn cosim_replay_mode_runs_one_exact_program() {
        // Clean replay matches and exits successfully.
        let options =
            CosimCliOptions { program_seed: Some(1), instructions: 12, ..Default::default() };
        let out = run_cosim(&options).expect("clean replay succeeds");
        assert!(out.contains("program seed 1 matches"), "output:\n{out}");

        // Replay with the fault injected reproduces the divergence directly
        // from the per-program seed (no batch derivation involved).
        let faulty = CosimCliOptions { inject_fault: Some("addi".into()), ..options };
        let report = run_cosim(&faulty).expect_err("faulty replay diverges");
        assert!(report.contains("diverges"), "report:\n{report}");
        assert!(report.contains("shrunk reproducer"), "report:\n{report}");
    }

    #[test]
    fn cosim_all_inconclusive_batch_fails() {
        // A 10-cycle budget is too small for any generated program to halt
        // (the prologue alone is longer), so nothing is matched — the run
        // must not report success.
        let options =
            CosimCliOptions { programs: 3, instructions: 12, max_cycles: 10, ..Default::default() };
        let report = run_cosim(&options).expect_err("zero coverage must fail");
        assert!(report.contains("3 inconclusive"), "report:\n{report}");
    }

    #[test]
    fn cosim_json_format_is_machine_readable() {
        let options = CosimCliOptions {
            programs: 3,
            format: OutputFormat::Json,
            instructions: 12,
            ..Default::default()
        };
        let out = run_cosim(&options).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["programs"], 3);
        // The default batch covers the scalar, 2-wide and 4-wide presets
        // plus a D-heavy generator batch on the default machine.
        let configs = value["configs"].as_array().unwrap();
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0]["config"], "scalar");
        assert_eq!(configs[1]["config"], "default-superscalar");
        assert_eq!(configs[2]["config"], "wide-4");
        assert_eq!(configs[3]["config"], "default-superscalar+dfp");
        assert_eq!(configs[3]["report"]["gen_dfp"], true);
        for c in configs {
            assert_eq!(c["report"]["divergences"].as_array().unwrap().len(), 0);
            assert_eq!(c["report"]["programs"], 3);
        }

        // Replay mode honours --format json too, in all outcomes.
        let replay = CosimCliOptions { program_seed: Some(5), ..options.clone() };
        let out = run_cosim(&replay).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["mode"], "replay");
        let configs = value["configs"].as_array().unwrap();
        assert_eq!(configs.len(), 3);
        assert!(configs.iter().all(|c| c["outcome"] == "match"));

        let faulty = CosimCliOptions { inject_fault: Some("addi".into()), ..replay };
        let report = run_cosim(&faulty).expect_err("fault diverges");
        let value: serde_json::Value = serde_json::from_str(&report).unwrap();
        let diverged = value["configs"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["outcome"] == "divergence")
            .expect("at least one config diverges");
        assert!(diverged["shrunk_program"].as_str().unwrap().contains("addi"));
    }

    #[test]
    fn run_reads_files_from_disk() {
        let dir = std::env::temp_dir().join(format!("rvsim-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let program_path = dir.join("prog.s");
        std::fs::write(&program_path, PROGRAM).unwrap();
        let options = CliOptions {
            program_path: program_path.to_string_lossy().into_owned(),
            max_cycles: 100_000,
            ..Default::default()
        };
        let out = run(&options).unwrap();
        assert!(out.contains("a0 (return value):      20"));
        let missing =
            CliOptions { program_path: "/nonexistent/prog.s".into(), ..Default::default() };
        assert!(run(&missing).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
