//! # rvsim-cli — batch benchmarking interface
//!
//! The paper's CLI (§II-E) lets advanced users run large programs in a batch
//! fashion: it takes an assembly (or C) source file and an architecture
//! description in JSON, plus options for the entry point, memory contents,
//! output verbosity and output format (text or JSON).  The original CLI
//! connects to the simulation server over HTTP; this reproduction runs the
//! simulator in-process, which preserves the user-visible behaviour (same
//! inputs, same reports) without the network hop.

#![warn(missing_docs)]

use rvsim_cc::OptLevel;
use rvsim_core::{ArchitectureConfig, HaltReason, Simulator};
use rvsim_mem::MemorySettings;

/// Output format of the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable text report.
    #[default]
    Text,
    /// JSON statistics object.
    Json,
}

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// Path to the program source (assembly, or C with `--c`).
    pub program_path: String,
    /// Path to the architecture JSON (optional — defaults when omitted).
    pub arch_path: Option<String>,
    /// Treat the program as C and compile it first.
    pub compile_c: bool,
    /// Optimization level for C compilation.
    pub opt_level: OptLevel,
    /// Entry label.
    pub entry: Option<String>,
    /// CSV file with memory arrays (the Memory Settings window's export).
    pub memory_csv: Option<String>,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Output format.
    pub format: OutputFormat,
    /// Print the debug log after the run.
    pub verbose: bool,
    /// Dump a memory range after the run: `(address, length)`.
    pub dump_memory: Option<(u64, usize)>,
}

/// Usage string printed on `--help` or argument errors.
pub const USAGE: &str = "\
rvsim-cli — batch interface to the superscalar RISC-V simulator

USAGE:
    rvsim-cli --program <FILE> [--arch <FILE.json>] [OPTIONS]

OPTIONS:
    --program <FILE>        assembly source file (mandatory)
    --arch <FILE>           architecture description in JSON
    --c                     treat the program as C and compile it first
    --opt <0|1|2|3>         C optimization level (default 0)
    --entry <LABEL>         entry point label (default: main or first instruction)
    --memory <FILE.csv>     memory arrays in CSV form (name,type,index,value)
    --max-cycles <N>        cycle budget (default 10000000)
    --format <text|json>    output format (default text)
    --dump-memory <ADDR,LEN>  hex-dump LEN bytes at ADDR after the run
    --verbose               also print the cycle-stamped debug log
    --help                  show this help
";

impl CliOptions {
    /// Parse command-line arguments (without the executable name).
    pub fn parse(args: &[String]) -> Result<CliOptions, String> {
        let mut options = CliOptions { max_cycles: 10_000_000, ..Default::default() };
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--program" => options.program_path = value(&mut i, "--program")?,
                "--arch" => options.arch_path = Some(value(&mut i, "--arch")?),
                "--c" => options.compile_c = true,
                "--opt" => {
                    let v = value(&mut i, "--opt")?;
                    options.opt_level = OptLevel::parse(&v)
                        .ok_or_else(|| format!("invalid optimization level `{v}`"))?;
                }
                "--entry" => options.entry = Some(value(&mut i, "--entry")?),
                "--memory" => options.memory_csv = Some(value(&mut i, "--memory")?),
                "--max-cycles" => {
                    let v = value(&mut i, "--max-cycles")?;
                    options.max_cycles =
                        v.parse().map_err(|_| format!("invalid cycle budget `{v}`"))?;
                }
                "--format" => {
                    let v = value(&mut i, "--format")?;
                    options.format = match v.as_str() {
                        "text" => OutputFormat::Text,
                        "json" => OutputFormat::Json,
                        other => return Err(format!("unknown format `{other}`")),
                    };
                }
                "--dump-memory" => {
                    let v = value(&mut i, "--dump-memory")?;
                    let (addr, len) = v
                        .split_once(',')
                        .ok_or_else(|| "expected ADDR,LEN for --dump-memory".to_string())?;
                    let addr = parse_u64(addr).ok_or_else(|| format!("bad address `{addr}`"))?;
                    let len: usize =
                        len.trim().parse().map_err(|_| format!("bad length `{len}`"))?;
                    options.dump_memory = Some((addr, len));
                }
                "--verbose" => options.verbose = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
            }
            i += 1;
        }
        if options.program_path.is_empty() {
            return Err(format!("--program is mandatory\n\n{USAGE}"));
        }
        Ok(options)
    }
}

fn parse_u64(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Run the CLI against already-loaded inputs (program source + optional
/// architecture JSON + optional memory CSV).  Returns the report text.
pub fn run_with_sources(
    options: &CliOptions,
    program_source: &str,
    arch_json: Option<&str>,
    memory_csv: Option<&str>,
) -> Result<String, String> {
    let config = match arch_json {
        Some(json) => ArchitectureConfig::from_json(json)?,
        None => ArchitectureConfig::default(),
    };

    // Optional C compilation step.
    let assembly = if options.compile_c {
        let output = rvsim_cc::compile(program_source, options.opt_level).map_err(|errors| {
            errors.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n")
        })?;
        output.assembly
    } else {
        program_source.to_string()
    };

    let memory_settings = match memory_csv {
        Some(csv) => MemorySettings::from_csv(csv)?,
        None => MemorySettings::new(),
    };

    let mut simulator = Simulator::from_assembly_with_memory(&assembly, &config, memory_settings)?;
    if let Some(entry) = &options.entry {
        let mut program = simulator.program().clone();
        if !program.set_entry(entry) {
            return Err(format!("entry label `{entry}` not found"));
        }
        simulator = Simulator::with_memory(program, &config, MemorySettings::new())?;
    }

    let result = simulator.run(options.max_cycles)?;
    let stats = simulator.statistics();

    let mut out = String::new();
    match options.format {
        OutputFormat::Json => {
            let value = serde_json::json!({
                "halt": halt_name(&result.halt),
                "cycles": result.cycles,
                "registers": {
                    "a0": simulator.int_register(10),
                    "a1": simulator.int_register(11),
                },
                "statistics": stats,
            });
            out.push_str(&serde_json::to_string_pretty(&value).expect("stats serialize"));
            out.push('\n');
        }
        OutputFormat::Text => {
            out.push_str(&format!("architecture:           {}\n", config.name));
            out.push_str(&format!("halt reason:            {}\n", halt_name(&result.halt)));
            out.push_str(&format!("a0 (return value):      {}\n", simulator.int_register(10)));
            out.push_str(&stats.report());
        }
    }

    if let Some((addr, len)) = options.dump_memory {
        out.push_str("--- memory dump ---\n");
        out.push_str(&simulator.memory().memory().hex_dump(addr, len));
    }
    if options.verbose {
        out.push_str("--- debug log ---\n");
        for entry in simulator.log().entries() {
            out.push_str(&format!("[{:>8}] {}\n", entry.cycle, entry.message));
        }
    }
    Ok(out)
}

/// Run the CLI by reading the files referenced in `options`.
pub fn run(options: &CliOptions) -> Result<String, String> {
    let program = std::fs::read_to_string(&options.program_path)
        .map_err(|e| format!("cannot read `{}`: {e}", options.program_path))?;
    let arch = match &options.arch_path {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?)
        }
        None => None,
    };
    let memory = match &options.memory_csv {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?)
        }
        None => None,
    };
    run_with_sources(options, &program, arch.as_deref(), memory.as_deref())
}

fn halt_name(halt: &HaltReason) -> String {
    match halt {
        HaltReason::PipelineEmpty => "pipeline empty".to_string(),
        HaltReason::MainReturned => "main returned".to_string(),
        HaltReason::Exception(e) => format!("exception: {e}"),
        HaltReason::MaxCyclesReached => "cycle budget exhausted".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 10
loop:
    addi t0, t0, 2
    addi t1, t1, -1
    bnez t1, loop
    mv   a0, t0
    ret
";

    #[test]
    fn parse_full_argument_set() {
        let o = CliOptions::parse(&args(&[
            "--program",
            "prog.s",
            "--arch",
            "arch.json",
            "--entry",
            "start",
            "--max-cycles",
            "5000",
            "--format",
            "json",
            "--verbose",
            "--memory",
            "mem.csv",
            "--dump-memory",
            "0x1000,64",
        ]))
        .unwrap();
        assert_eq!(o.program_path, "prog.s");
        assert_eq!(o.arch_path.as_deref(), Some("arch.json"));
        assert_eq!(o.entry.as_deref(), Some("start"));
        assert_eq!(o.max_cycles, 5000);
        assert_eq!(o.format, OutputFormat::Json);
        assert!(o.verbose);
        assert_eq!(o.memory_csv.as_deref(), Some("mem.csv"));
        assert_eq!(o.dump_memory, Some((0x1000, 64)));
    }

    #[test]
    fn parse_errors() {
        assert!(CliOptions::parse(&args(&[])).is_err());
        assert!(CliOptions::parse(&args(&["--program"])).is_err());
        assert!(CliOptions::parse(&args(&["--program", "x.s", "--format", "xml"])).is_err());
        assert!(CliOptions::parse(&args(&["--program", "x.s", "--wat"])).is_err());
        assert!(CliOptions::parse(&args(&["--help"])).is_err());
        assert!(CliOptions::parse(&args(&["--program", "x.s", "--opt", "9"])).is_err());
        assert!(CliOptions::parse(&args(&["--program", "x.s", "--dump-memory", "12"])).is_err());
    }

    #[test]
    fn text_report_contains_statistics() {
        let options =
            CliOptions { program_path: "prog.s".into(), max_cycles: 100_000, ..Default::default() };
        let out = run_with_sources(&options, PROGRAM, None, None).unwrap();
        assert!(out.contains("a0 (return value):      20"));
        assert!(out.contains("IPC:"));
        assert!(out.contains("dynamic instruction mix"));
    }

    #[test]
    fn json_report_is_valid_json() {
        let options = CliOptions {
            program_path: "prog.s".into(),
            max_cycles: 100_000,
            format: OutputFormat::Json,
            ..Default::default()
        };
        let out = run_with_sources(&options, PROGRAM, None, None).unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(value["registers"]["a0"], 20);
        assert_eq!(value["halt"], "main returned");
        assert!(value["statistics"]["committed"].as_u64().unwrap() > 20);
    }

    #[test]
    fn custom_architecture_json_is_honoured() {
        let mut config = ArchitectureConfig::scalar();
        config.name = "cli-test-arch".into();
        let options =
            CliOptions { program_path: "prog.s".into(), max_cycles: 100_000, ..Default::default() };
        let out = run_with_sources(&options, PROGRAM, Some(&config.to_json()), None).unwrap();
        assert!(out.contains("cli-test-arch"));
        assert!(run_with_sources(&options, PROGRAM, Some("{broken"), None).is_err());
    }

    #[test]
    fn c_compilation_path() {
        let options = CliOptions {
            program_path: "prog.c".into(),
            compile_c: true,
            opt_level: OptLevel::O2,
            max_cycles: 1_000_000,
            ..Default::default()
        };
        let source =
            "int main(void) { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }";
        let out = run_with_sources(&options, source, None, None).unwrap();
        assert!(out.contains("a0 (return value):      55"));
        let bad = run_with_sources(&options, "int main(void) { return 1 + ; }", None, None);
        assert!(bad.is_err());
    }

    #[test]
    fn memory_csv_arrays_are_available() {
        let options =
            CliOptions { program_path: "prog.s".into(), max_cycles: 100_000, ..Default::default() };
        let program = "
main:
    la   t0, input
    lw   a0, 0(t0)
    lw   a1, 4(t0)
    add  a0, a0, a1
    ret
";
        let csv = "name,type,index,value\ninput,word,0,11\ninput,word,1,31\n";
        let out = run_with_sources(&options, program, None, Some(csv)).unwrap();
        assert!(out.contains("a0 (return value):      42"));
    }

    #[test]
    fn memory_dump_and_verbose_log() {
        let options = CliOptions {
            program_path: "prog.s".into(),
            max_cycles: 100_000,
            dump_memory: Some((0, 16)),
            verbose: true,
            ..Default::default()
        };
        let out = run_with_sources(&options, PROGRAM, None, None).unwrap();
        assert!(out.contains("--- memory dump ---"));
        assert!(out.contains("--- debug log ---"));
        assert!(out.contains("simulation finished"));
    }

    #[test]
    fn run_reads_files_from_disk() {
        let dir = std::env::temp_dir().join(format!("rvsim-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let program_path = dir.join("prog.s");
        std::fs::write(&program_path, PROGRAM).unwrap();
        let options = CliOptions {
            program_path: program_path.to_string_lossy().into_owned(),
            max_cycles: 100_000,
            ..Default::default()
        };
        let out = run(&options).unwrap();
        assert!(out.contains("a0 (return value):      20"));
        let missing =
            CliOptions { program_path: "/nonexistent/prog.s".into(), ..Default::default() };
        assert!(run(&missing).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
