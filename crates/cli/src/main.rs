//! `rvsim-cli` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `rvsim-cli cosim ...` — differential co-simulation subcommand.
    if args.first().map(String::as_str) == Some("cosim") {
        let options = match rvsim_cli::CosimCliOptions::parse(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        };
        match rvsim_cli::run_cosim(&options) {
            Ok(report) => print!("{report}"),
            Err(report) => {
                // Divergence reports go to stdout (they are the product of
                // the run); the exit code carries the failure.
                print!("{report}");
                std::process::exit(1);
            }
        }
        return;
    }

    // `rvsim-cli serve ...` — the TCP/HTTP network front end.
    if args.first().map(String::as_str) == Some("serve") {
        let options = match rvsim_cli::ServeCliOptions::parse(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        };
        match rvsim_cli::start_serve(&options) {
            Ok(server) => {
                if options.router_backends.is_empty() {
                    println!(
                        "rvsim-net listening on http://{} (POST /api, GET /metrics, GET /healthz)",
                        server.local_addr()
                    );
                    // After the banner: tools parse the bound address from
                    // the first stdout line.
                    if let Some(dir) = &options.state_dir {
                        println!(
                            "durable state in {dir}: {} session(s) recovered from checkpoints",
                            server.server().restored_session_count()
                        );
                    }
                } else {
                    println!(
                        "rvsim-net router listening on http://{} ({} backends; POST /api, \
                         POST /admin/drain, GET /metrics, GET /healthz)",
                        server.local_addr(),
                        options.router_backends.len()
                    );
                }
                // Serve until the process is killed; the front end's own
                // threads do all the work.
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(1);
            }
        }
    }

    // `rvsim-cli chaos ...` — deterministic fault-injecting TCP proxy.
    if args.first().map(String::as_str) == Some("chaos") {
        let options = match rvsim_cli::ChaosCliOptions::parse(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        };
        match rvsim_cli::start_chaos(&options) {
            Ok(proxy) => {
                println!(
                    "rvsim-chaos proxying http://{} -> {} (seed {}, reset {}, truncate {}, \
                     delay {} <= {}ms)",
                    proxy.local_addr(),
                    options.upstream,
                    options.seed,
                    options.reset_probability,
                    options.truncate_probability,
                    options.delay_probability,
                    options.max_delay_ms
                );
                // Proxy until the process is killed.
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(1);
            }
        }
    }

    // `rvsim-cli drain ...` — live-drain one backend of a router tier.
    if args.first().map(String::as_str) == Some("drain") {
        let options = match rvsim_cli::DrainCliOptions::parse(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        };
        match rvsim_cli::run_drain(&options) {
            Ok(report) => print!("{report}"),
            Err(report) => {
                eprintln!("{}", report.trim_end());
                std::process::exit(1);
            }
        }
        return;
    }

    // `rvsim-cli loadgen ...` — closed-loop load against a front end.
    if args.first().map(String::as_str) == Some("loadgen") {
        let options = match rvsim_cli::LoadgenCliOptions::parse(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        };
        match rvsim_cli::run_loadgen(&options) {
            Ok(report) => print!("{report}"),
            Err(report) => {
                eprintln!("{}", report.trim_end());
                std::process::exit(1);
            }
        }
        return;
    }

    // `rvsim-cli tail ...` — follow a front end's event journal.
    if args.first().map(String::as_str) == Some("tail") {
        let options = match rvsim_cli::TailCliOptions::parse(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        };
        if let Err(message) = rvsim_cli::run_tail(&options) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        return;
    }

    // `rvsim-cli top ...` — live metrics dashboard over a front end.
    if args.first().map(String::as_str) == Some("top") {
        let options = match rvsim_cli::TopCliOptions::parse(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        };
        if let Err(message) = rvsim_cli::run_top(&options) {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        return;
    }

    // `rvsim-cli bench ...` — pipeline throughput benchmark subcommand.
    if args.first().map(String::as_str) == Some("bench") {
        let options = match rvsim_cli::BenchCliOptions::parse(&args[1..]) {
            Ok(options) => options,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        };
        match rvsim_cli::run_bench(&options) {
            Ok(report) => print!("{report}"),
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    let options = match rvsim_cli::CliOptions::parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    match rvsim_cli::run(&options) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
