//! `rvsim-cli` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match rvsim_cli::CliOptions::parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    match rvsim_cli::run(&options) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
