//! Crash-failover test of the shipped `rvsim-cli` binary: two durable
//! backends plus a router run as real child processes, one backend is
//! killed with SIGKILL mid-conversation, and the router must (a) keep
//! answering promptly — a dead upstream is an error or a failover, never a
//! hang until the next probe tick — and (b) recover every checkpointed
//! session on the survivor.

use rvsim_net::{http_post, TcpApiClient};
use rvsim_server::{Request, Response};
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 4000
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    mv   a0, t0
    ret
";

/// A serve child that is killed on drop, so a panicking assertion never
/// leaks a listening process.
struct ServeChild {
    child: Child,
    addr: SocketAddr,
}

impl ServeChild {
    fn spawn(extra_args: &[&str]) -> ServeChild {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rvsim-cli"))
            .args(["serve", "--tcp", "--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("serve child spawns");
        let mut banner = String::new();
        let mut reader = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
        reader.read_line(&mut banner).expect("banner line");
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|addr| addr.parse().ok())
            .unwrap_or_else(|| panic!("unexpected serve banner `{}`", banner.trim()));
        // Keep draining the child's stdout so it never blocks on a full pipe.
        std::thread::spawn(move || for _ in reader.lines().map_while(Result::ok) {});
        ServeChild { child, addr }
    }

    /// SIGKILL — the backend gets no chance to flush or say goodbye.
    fn kill_dead(&mut self) {
        self.child.kill().expect("kill -9 lands");
        self.child.wait().expect("child reaped");
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn create_session(client: &mut TcpApiClient) -> u64 {
    match client
        .call(&Request::CreateSession {
            program: PROGRAM.into(),
            architecture: None,
            entry: None,
            session: None,
        })
        .expect("create succeeds")
    {
        Response::SessionCreated { session } => session,
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn killed_backend_answers_promptly_and_recovers_through_the_router() {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping chaos failover test: loopback unavailable");
        return;
    }
    let state_dir =
        std::env::temp_dir().join(format!("rvsim-chaos-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let state = state_dir.to_str().expect("utf-8 temp path");

    // Two durable backends sharing the state directory (interval 0 =
    // checkpoint sweep on every housekeeping tick), plus the router.
    let durable = ["--state-dir", state, "--checkpoint-interval", "0"];
    let mut b0 = ServeChild::spawn(&durable);
    let b1 = ServeChild::spawn(&durable);
    let backends = format!("{},{}", b0.addr, b1.addr);
    let router = ServeChild::spawn(&["--router", &backends]);

    let mut client = TcpApiClient::new(router.addr);
    let sessions: Vec<u64> = (0..16).map(|_| create_session(&mut client)).collect();
    for &session in &sessions {
        let r = client.call(&Request::Step { session, cycles: 3 }).unwrap();
        assert_eq!(r, Response::Stepped { cycle: 3, halted: false });
    }

    // Wait for the periodic sweep to put all 16 cycle-3 checkpoints on
    // disk.  Counting files is not enough — sessions are checkpointed at
    // install time too, so a cycle-0 envelope may still be sitting there.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let fresh = std::fs::read_dir(&state_dir)
            .map(|dir| {
                dir.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "rvse"))
                    .filter_map(|e| std::fs::read(e.path()).ok())
                    .filter_map(|bytes| rvsim_server::SessionEnvelope::from_bytes(&bytes).ok())
                    .filter(|envelope| envelope.cycle == 3)
                    .count()
            })
            .unwrap_or(0);
        if fresh >= sessions.len() {
            break;
        }
        assert!(Instant::now() < deadline, "cycle-3 checkpoints never reached disk ({fresh}/16)");
        std::thread::sleep(Duration::from_millis(50));
    }

    // kill -9 one backend mid-conversation.
    b0.kill_dead();

    // Promptness: every session answers well before any hang-until-probe
    // would.  A session on the dead backend may legitimately come back as
    // an error (502 / wire error) until the failover lands — but the
    // router must never sit on the request.
    for &session in &sessions {
        let body = serde_json::to_vec(&Request::GetState { session }).unwrap();
        let started = Instant::now();
        let answered = http_post(router.addr, "/api", &body, Duration::from_secs(8));
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(8),
            "router sat {elapsed:?} on session {session} after the kill"
        );
        // Transport-level failure of the *router* connection is not
        // acceptable; an error payload or 5xx status is.
        answered.expect("the router connection itself stays healthy");
    }

    // Recovery: the probes flip the backend dead, the router restores its
    // sessions on the survivor, and every session serves its pre-crash
    // state again.
    let deadline = Instant::now() + Duration::from_secs(30);
    'sessions: for &session in &sessions {
        loop {
            let mut probe = TcpApiClient::new(router.addr);
            if let Ok(Response::State(snapshot)) = probe.call(&Request::GetState { session }) {
                assert_eq!(snapshot.cycle, 3, "session {session} lost its pre-crash state");
                continue 'sessions;
            }
            assert!(Instant::now() < deadline, "session {session} never came back after the kill");
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    // And they keep simulating from where they left off.
    let mut client = TcpApiClient::new(router.addr);
    for &session in &sessions {
        let r = client.call(&Request::Step { session, cycles: 2 }).unwrap();
        assert_eq!(r, Response::Stepped { cycle: 5, halted: false });
    }

    drop(router);
    drop(b1);
    let _ = std::fs::remove_dir_all(&state_dir);
}
