//! End-to-end test of the `rvsim-cli` binary: assemble and simulate a small
//! program from a real file, then check the exit code and the emitted
//! statistics in both output formats.

use std::process::Command;

const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 10
loop:
    addi t0, t0, 3
    addi t1, t1, -1
    bnez t1, loop
    mv   a0, t0
    ret
";

fn write_program() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("rvsim_cli_e2e_{}.s", std::process::id()));
    std::fs::write(&path, PROGRAM).expect("temp program written");
    path
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rvsim-cli"))
}

#[test]
fn json_run_reports_statistics_and_exit_zero() {
    let program = write_program();
    let output = cli()
        .args(["--program", program.to_str().unwrap(), "--format", "json"])
        .output()
        .expect("cli runs");
    std::fs::remove_file(&program).ok();

    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON output");
    assert_eq!(value["halt"], "main returned");
    assert_eq!(value["registers"]["a0"], 30);
    assert!(value["cycles"].as_u64().unwrap() > 0);
    let stats = &value["statistics"];
    assert!(stats["committed"].as_u64().unwrap() >= 34, "all loop instructions commit");
    assert!(stats["cycles"].as_u64().unwrap() > 0);
}

#[test]
fn text_run_reports_return_value() {
    let program = write_program();
    let output = cli().args(["--program", program.to_str().unwrap()]).output().expect("cli runs");
    std::fs::remove_file(&program).ok();

    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("a0 (return value):      30"), "output:\n{stdout}");
    assert!(stdout.contains("IPC:"), "output:\n{stdout}");
}

#[test]
fn cosim_subcommand_reports_zero_divergences() {
    let output = cli()
        .args(["cosim", "--programs", "12", "--seed", "42", "--instructions", "20"])
        .output()
        .expect("cli runs");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}\nstdout: {}",
        String::from_utf8_lossy(&output.stderr),
        String::from_utf8_lossy(&output.stdout)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("12 programs"), "output:\n{stdout}");
    assert!(stdout.contains("0 divergences"), "output:\n{stdout}");
}

#[test]
fn cosim_injected_fault_exits_one_with_shrunk_reproducer() {
    let output = cli()
        .args([
            "cosim",
            "--programs",
            "2",
            "--seed",
            "7",
            "--instructions",
            "8",
            "--inject-fault",
            "addi",
        ])
        .output()
        .expect("cli runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("shrunk reproducer"), "output:\n{stdout}");
    assert!(stdout.contains("--program-seed"), "output:\n{stdout}");
}

#[test]
fn cosim_replay_from_printed_program_seed() {
    // The replay flag must regenerate the exact program: a clean harness
    // matches it, and the same seed with the fault injected diverges.
    let clean = cli()
        .args(["cosim", "--program-seed", "1346066267577507604", "--instructions", "8"])
        .output()
        .expect("cli runs");
    assert_eq!(clean.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&clean.stdout));
    assert!(String::from_utf8_lossy(&clean.stdout).contains("matches"));

    let faulty = cli()
        .args([
            "cosim",
            "--program-seed",
            "1346066267577507604",
            "--instructions",
            "8",
            "--inject-fault",
            "addi",
        ])
        .output()
        .expect("cli runs");
    assert_eq!(faulty.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&faulty.stdout).contains("diverges"));
}

#[test]
fn cosim_bad_arguments_exit_with_code_two() {
    let output = cli().args(["cosim", "--wat"]).output().expect("cli runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("cosim"));
}

#[test]
fn bad_arguments_exit_with_code_two() {
    let output = cli().args(["--format", "json"]).output().expect("cli runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&output.stderr).is_empty());
}

#[test]
fn missing_program_file_exits_with_code_one() {
    let output = cli().args(["--program", "/nonexistent/never.s"]).output().expect("cli runs");
    assert_eq!(output.status.code(), Some(1));
}
