//! Tokenizer for the C subset.

use crate::CcError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f32),
    /// Character literal (value).
    Char(u8),
    /// String literal (unused by codegen, accepted for completeness).
    Str(String),
    /// Punctuation / operator, e.g. `+`, `==`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "<<", ">>", "->", "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "(", ")",
    "{", "}", "[", "]", ";", ",", "?", ":",
];

/// Tokenize a C source file.
pub fn tokenize(source: &str) -> Result<Vec<Token>, CcError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] as char == '/' {
                while i < bytes.len() && bytes[i] as char != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] as char == '*' {
                i += 2;
                while i + 1 < bytes.len()
                    && !(bytes[i] as char == '*' && bytes[i + 1] as char == '/')
                {
                    if bytes[i] as char == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(CcError::new(line, "unterminated block comment"));
                }
                i += 2;
                continue;
            }
        }
        // Preprocessor lines are skipped (no macro support).
        if c == '#' {
            while i < bytes.len() && bytes[i] as char != '\n' {
                i += 1;
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
            {
                i += 1;
            }
            tokens.push(Token { tok: Tok::Ident(source[start..i].to_string()), line });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else if ch == '.' && !is_float {
                    is_float = true;
                    i += 1;
                } else {
                    break;
                }
            }
            let text = &source[start..i];
            let text = text.trim_end_matches(['f', 'F']);
            if is_float {
                let value: f32 = text
                    .parse()
                    .map_err(|_| CcError::new(line, format!("bad float literal `{text}`")))?;
                tokens.push(Token { tok: Tok::Float(value), line });
            } else if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                let value = i64::from_str_radix(hex, 16)
                    .map_err(|_| CcError::new(line, format!("bad hex literal `{text}`")))?;
                tokens.push(Token { tok: Tok::Int(value), line });
            } else {
                let value: i64 = text
                    .parse()
                    .map_err(|_| CcError::new(line, format!("bad integer literal `{text}`")))?;
                tokens.push(Token { tok: Tok::Int(value), line });
            }
            continue;
        }
        // Character literals.
        if c == '\'' {
            i += 1;
            if i >= bytes.len() {
                return Err(CcError::new(line, "unterminated character literal"));
            }
            let value = if bytes[i] as char == '\\' {
                i += 1;
                let esc = bytes.get(i).copied().map(|b| b as char).unwrap_or('?');
                i += 1;
                match esc {
                    'n' => b'\n',
                    't' => b'\t',
                    '0' => 0,
                    '\\' => b'\\',
                    '\'' => b'\'',
                    other => return Err(CcError::new(line, format!("unknown escape `\\{other}`"))),
                }
            } else {
                let v = bytes[i];
                i += 1;
                v
            };
            if i >= bytes.len() || bytes[i] as char != '\'' {
                return Err(CcError::new(line, "unterminated character literal"));
            }
            i += 1;
            tokens.push(Token { tok: Tok::Char(value), line });
            continue;
        }
        // String literals.
        if c == '"' {
            i += 1;
            let mut s = String::new();
            while i < bytes.len() && bytes[i] as char != '"' {
                let ch = bytes[i] as char;
                if ch == '\\' && i + 1 < bytes.len() {
                    i += 1;
                    s.push(match bytes[i] as char {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                } else {
                    s.push(ch);
                }
                i += 1;
            }
            if i >= bytes.len() {
                return Err(CcError::new(line, "unterminated string literal"));
            }
            i += 1;
            tokens.push(Token { tok: Tok::Str(s), line });
            continue;
        }
        // Punctuation: longest match first.
        let rest = &source[i..];
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                tokens.push(Token { tok: Tok::Punct(p), line });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(CcError::new(line, format!("unexpected character `{c}`")));
        }
    }

    tokens.push(Token { tok: Tok::Eof, line });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_identifiers_numbers() {
        let toks = kinds("int x = 42; float y = 1.5f;");
        assert_eq!(toks[0], Tok::Ident("int".into()));
        assert_eq!(toks[1], Tok::Ident("x".into()));
        assert_eq!(toks[2], Tok::Punct("="));
        assert_eq!(toks[3], Tok::Int(42));
        assert_eq!(toks[7], Tok::Punct("="));
        assert_eq!(toks[8], Tok::Float(1.5));
    }

    #[test]
    fn hex_char_string() {
        let toks = kinds("0x10 'a' '\\n' \"hi\\n\"");
        assert_eq!(toks[0], Tok::Int(16));
        assert_eq!(toks[1], Tok::Char(97));
        assert_eq!(toks[2], Tok::Char(10));
        assert_eq!(toks[3], Tok::Str("hi\n".into()));
    }

    #[test]
    fn multi_char_operators_longest_match() {
        let toks = kinds("a <= b == c && d++ += e");
        assert!(toks.contains(&Tok::Punct("<=")));
        assert!(toks.contains(&Tok::Punct("==")));
        assert!(toks.contains(&Tok::Punct("&&")));
        assert!(toks.contains(&Tok::Punct("++")));
        assert!(toks.contains(&Tok::Punct("+=")));
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let toks = kinds("#include <stdio.h>\n// line comment\nint /* block\ncomment */ x;");
        assert_eq!(toks[0], Tok::Ident("int".into()));
        assert_eq!(toks[1], Tok::Ident("x".into()));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = tokenize("int a;\nint b;\n\nint c;").unwrap();
        let line_of =
            |name: &str| toks.iter().find(|t| t.tok == Tok::Ident(name.into())).unwrap().line;
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 4);
    }

    #[test]
    fn errors() {
        assert!(tokenize("int x = 1.5.5;").is_err());
        assert!(tokenize("char c = 'ab").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("int x = `bad`;").is_err());
    }
}
