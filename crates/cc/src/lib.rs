//! # rvsim-cc — a small C compiler targeting RV32IM+F assembly
//!
//! The paper integrates the GCC cross-compiler on the server to translate C
//! programs into RISC-V assembly with selectable optimization levels and a
//! C ↔ assembly line mapping for the editor (§II-B, §III-C).  A proprietary
//! toolchain cannot be bundled here, so this crate provides the same
//! *capability* for the reproduction: a self-contained compiler for a C
//! subset that is sufficient for the educational kernels the simulator is
//! meant to teach with (array loops, reductions, branches, recursion,
//! floating-point arithmetic).
//!
//! Supported subset:
//!
//! * types: `int`, `float`, `char`, `void`, one level of pointers, 1-D arrays
//! * globals with initializers, `extern` arrays (filled through the Memory
//!   Settings window), local scalars and arrays
//! * functions with parameters and return values (integer and float)
//! * statements: declarations, assignment (+ `+=`, `-=`, `*=`), `if`/`else`,
//!   `while`, `for`, `return`, `break`, `continue`, blocks
//! * expressions: arithmetic, comparisons, logical `&&`/`||`/`!`, array
//!   indexing, function calls, casts between `int` and `float`, post-`++`/`--`
//!
//! Optimization levels mirror the paper's four GCC levels in spirit:
//!
//! * `-O0` — everything on the stack, no folding
//! * `-O1` — constant folding and algebraic simplification
//! * `-O2` — `-O1` plus scalar locals promoted to callee-saved registers
//! * `-O3` — `-O2` plus strength reduction (multiplication/division by powers
//!   of two become shifts)
//!
//! The output of [`compile`] is an assembly listing (accepted by `rvsim-asm`)
//! plus a per-statement line map linking C lines to assembly lines.

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;

use serde::{Deserialize, Serialize};

/// Optimization level (`-O0` … `-O3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub enum OptLevel {
    /// No optimization; all locals live on the stack.
    #[default]
    O0,
    /// Constant folding and algebraic simplification.
    O1,
    /// `O1` plus register allocation of scalar locals.
    O2,
    /// `O2` plus strength reduction.
    O3,
}

impl OptLevel {
    /// Parse `"0"`/`"O0"`/`"-O2"`-style spellings.
    pub fn parse(text: &str) -> Option<OptLevel> {
        match text.trim().trim_start_matches('-').trim_start_matches(['O', 'o']) {
            "0" => Some(OptLevel::O0),
            "1" => Some(OptLevel::O1),
            "2" => Some(OptLevel::O2),
            "3" => Some(OptLevel::O3),
            _ => None,
        }
    }

    /// True when constant folding is enabled.
    pub fn fold_constants(self) -> bool {
        self >= OptLevel::O1
    }

    /// True when scalar locals are kept in registers.
    pub fn registers_for_locals(self) -> bool {
        self >= OptLevel::O2
    }

    /// True when strength reduction is applied.
    pub fn strength_reduction(self) -> bool {
        self >= OptLevel::O3
    }
}

/// A compile error with source position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcError {
    /// 1-based source line.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl CcError {
    /// Create an error at `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        CcError { line, message: message.into() }
    }
}

impl std::fmt::Display for CcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CcError {}

/// Result of a successful compilation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOutput {
    /// Generated assembly listing (accepted by `rvsim-asm`).
    pub assembly: String,
    /// Links from C source lines to the first assembly line generated for
    /// them (1-based on both sides) — the editor's C ↔ assembly highlighting.
    pub line_map: Vec<(usize, usize)>,
}

/// Compile C `source` at the given optimization level.
pub fn compile(source: &str, opt: OptLevel) -> Result<CompileOutput, Vec<CcError>> {
    let tokens = lexer::tokenize(source).map_err(|e| vec![e])?;
    let unit = parser::parse(&tokens).map_err(|e| vec![e])?;
    codegen::generate(&unit, opt).map_err(|e| vec![e])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_level_parsing_and_ordering() {
        assert_eq!(OptLevel::parse("-O2"), Some(OptLevel::O2));
        assert_eq!(OptLevel::parse("O0"), Some(OptLevel::O0));
        assert_eq!(OptLevel::parse("3"), Some(OptLevel::O3));
        assert_eq!(OptLevel::parse("fast"), None);
        assert!(OptLevel::O3 > OptLevel::O0);
        assert!(!OptLevel::O0.fold_constants());
        assert!(OptLevel::O1.fold_constants());
        assert!(!OptLevel::O1.registers_for_locals());
        assert!(OptLevel::O2.registers_for_locals());
        assert!(OptLevel::O3.strength_reduction());
    }

    #[test]
    fn error_display() {
        let e = CcError::new(3, "expected `;`");
        assert_eq!(e.to_string(), "line 3: expected `;`");
    }

    #[test]
    fn end_to_end_smoke() {
        let out = compile("int main(void) { return 1 + 2; }", OptLevel::O0).unwrap();
        assert!(out.assembly.contains("main:"));
        assert!(!out.line_map.is_empty());
        let err = compile("int main(void) { return 1 + ; }", OptLevel::O0).unwrap_err();
        assert!(!err.is_empty());
    }
}
