//! Recursive-descent parser for the C subset.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::CcError;

/// Parse a token stream into a translation unit.
pub fn parse(tokens: &[Token]) -> Result<Unit, CcError> {
    let mut p = Parser { tokens, pos: 0 };
    p.parse_unit()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

const KEYWORDS: &[&str] = &[
    "int", "float", "char", "void", "if", "else", "while", "for", "return", "break", "continue",
    "extern",
];

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn advance(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(x) if *x == p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CcError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(CcError::new(self.line(), format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(name) if name == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CcError> {
        match self.advance() {
            Tok::Ident(name) if !KEYWORDS.contains(&name.as_str()) => Ok(name),
            other => {
                Err(CcError::new(self.line(), format!("expected identifier, found {other:?}")))
            }
        }
    }

    fn peek_type(&self) -> bool {
        matches!(self.peek(), Tok::Ident(name) if matches!(name.as_str(), "int" | "float" | "char" | "void"))
    }

    fn parse_type(&mut self) -> Result<CType, CcError> {
        let base = match self.advance() {
            Tok::Ident(name) => match name.as_str() {
                "int" => CType::Int,
                "float" => CType::Float,
                "char" => CType::Char,
                "void" => CType::Void,
                other => {
                    return Err(CcError::new(self.line(), format!("unknown type `{other}`")));
                }
            },
            other => {
                return Err(CcError::new(self.line(), format!("expected type, found {other:?}")))
            }
        };
        let mut ty = base;
        while self.eat_punct("*") {
            ty = CType::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    // ------------------------------------------------------------- top level

    fn parse_unit(&mut self) -> Result<Unit, CcError> {
        let mut unit = Unit::default();
        while !matches!(self.peek(), Tok::Eof) {
            let line = self.line();
            let is_extern = self.eat_keyword("extern");
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if self.eat_punct("(") {
                // Function definition (or declaration, which we ignore).
                let params = self.parse_params()?;
                if self.eat_punct(";") {
                    continue; // forward declaration
                }
                self.expect_punct("{")?;
                let body = self.parse_block_body()?;
                unit.functions.push(Function { name, ret: ty, params, body, line });
            } else {
                // Global variable or array.
                let array_size = if self.eat_punct("[") {
                    let size = match self.peek() {
                        Tok::Int(n) => {
                            let n = *n as usize;
                            self.advance();
                            n
                        }
                        _ => 0, // extern int arr[];
                    };
                    self.expect_punct("]")?;
                    Some(size)
                } else {
                    None
                };
                let mut init = Vec::new();
                if self.eat_punct("=") {
                    if self.eat_punct("{") {
                        loop {
                            init.push(self.parse_const()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                            if matches!(self.peek(), Tok::Punct("}")) {
                                break;
                            }
                        }
                        self.expect_punct("}")?;
                    } else {
                        init.push(self.parse_const()?);
                    }
                }
                self.expect_punct(";")?;
                unit.globals.push(Global { name, ty, array_size, init, is_extern, line });
            }
        }
        Ok(unit)
    }

    fn parse_const(&mut self) -> Result<Const, CcError> {
        let negative = self.eat_punct("-");
        match self.advance() {
            Tok::Int(v) => Ok(Const::Int(if negative { -v } else { v })),
            Tok::Float(v) => Ok(Const::Float(if negative { -v } else { v })),
            Tok::Char(v) => Ok(Const::Int(v as i64)),
            other => Err(CcError::new(self.line(), format!("expected constant, found {other:?}"))),
        }
    }

    fn parse_params(&mut self) -> Result<Vec<Param>, CcError> {
        let mut params = Vec::new();
        if self.eat_punct(")") {
            return Ok(params);
        }
        // `(void)`
        if matches!(self.peek(), Tok::Ident(n) if n == "void")
            && matches!(&self.tokens[self.pos + 1].tok, Tok::Punct(")"))
        {
            self.advance();
            self.expect_punct(")")?;
            return Ok(params);
        }
        loop {
            let mut ty = self.parse_type()?;
            let name = self.expect_ident()?;
            // `int a[]` parameters decay to pointers.
            if self.eat_punct("[") {
                if let Tok::Int(_) = self.peek() {
                    self.advance();
                }
                self.expect_punct("]")?;
                ty = CType::Ptr(Box::new(ty));
            }
            params.push(Param { name, ty });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(params)
    }

    // ------------------------------------------------------------ statements

    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, CcError> {
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(CcError::new(self.line(), "unexpected end of file inside block"));
            }
            body.push(self.parse_stmt()?);
        }
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CcError> {
        let line = self.line();
        if self.eat_punct("{") {
            return Ok(Stmt::Block { body: self.parse_block_body()? });
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then = self.parse_stmt_as_block()?;
            let els =
                if self.eat_keyword("else") { self.parse_stmt_as_block()? } else { Vec::new() };
            return Ok(Stmt::If { cond, then, els, line });
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = self.parse_stmt_as_block()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.eat_keyword("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = if self.peek_type() { self.parse_decl()? } else { self.parse_expr_stmt()? };
                Some(Box::new(s))
            };
            let cond = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), Tok::Punct(")")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(")")?;
            let body = self.parse_stmt_as_block()?;
            return Ok(Stmt::For { init, cond, step, body, line });
        }
        if self.eat_keyword("return") {
            let value = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return { value, line });
        }
        if self.eat_keyword("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break { line });
        }
        if self.eat_keyword("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue { line });
        }
        if self.peek_type() {
            return self.parse_decl();
        }
        self.parse_expr_stmt()
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<Stmt>, CcError> {
        if self.eat_punct("{") {
            self.parse_block_body()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_decl(&mut self) -> Result<Stmt, CcError> {
        let line = self.line();
        let ty = self.parse_type()?;
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let array_size = if self.eat_punct("[") {
                let size = match self.advance() {
                    Tok::Int(n) => n as usize,
                    other => {
                        return Err(CcError::new(
                            line,
                            format!("expected array size, found {other:?}"),
                        ));
                    }
                };
                self.expect_punct("]")?;
                Some(size)
            } else {
                None
            };
            let init = if self.eat_punct("=") { Some(self.parse_expr()?) } else { None };
            decls.push(Stmt::Decl { name, ty: ty.clone(), array_size, init, line });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        if decls.len() == 1 {
            Ok(decls.pop().unwrap())
        } else {
            Ok(Stmt::Block { body: decls })
        }
    }

    fn parse_expr_stmt(&mut self) -> Result<Stmt, CcError> {
        let line = self.line();
        let expr = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr { expr, line })
    }

    // ----------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr, CcError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Expr, CcError> {
        let lhs = self.parse_logical_or()?;
        let compound = |op| Some(op);
        let op = match self.peek() {
            Tok::Punct("=") => {
                self.advance();
                None
            }
            Tok::Punct("+=") => {
                self.advance();
                compound(BinOp::Add)
            }
            Tok::Punct("-=") => {
                self.advance();
                compound(BinOp::Sub)
            }
            Tok::Punct("*=") => {
                self.advance();
                compound(BinOp::Mul)
            }
            Tok::Punct("/=") => {
                self.advance();
                compound(BinOp::Div)
            }
            Tok::Punct("%=") => {
                self.advance();
                compound(BinOp::Mod)
            }
            _ => return Ok(lhs),
        };
        if !matches!(lhs, Expr::Var(_) | Expr::Index { .. }) {
            return Err(CcError::new(
                self.line(),
                "assignment target must be a variable or array element",
            ));
        }
        let value = self.parse_assignment()?;
        Ok(Expr::Assign { target: Box::new(lhs), op, value: Box::new(value) })
    }

    fn parse_logical_or(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_logical_and()?;
        while self.eat_punct("||") {
            let rhs = self.parse_logical_and()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_logical_and(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_bitor()?;
        while self.eat_punct("&&") {
            let rhs = self.parse_bitor()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_bitor(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_bitxor()?;
        while matches!(self.peek(), Tok::Punct("|")) {
            self.advance();
            let rhs = self.parse_bitxor()?;
            lhs = Expr::Binary { op: BinOp::BitOr, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_bitxor(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_bitand()?;
        while matches!(self.peek(), Tok::Punct("^")) {
            self.advance();
            let rhs = self.parse_bitand()?;
            lhs = Expr::Binary { op: BinOp::BitXor, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_bitand(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_equality()?;
        while matches!(self.peek(), Tok::Punct("&")) {
            self.advance();
            let rhs = self.parse_equality()?;
            lhs = Expr::Binary { op: BinOp::BitAnd, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("==") => BinOp::Eq,
                Tok::Punct("!=") => BinOp::Ne,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_relational()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_shift()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("<") => BinOp::Lt,
                Tok::Punct("<=") => BinOp::Le,
                Tok::Punct(">") => BinOp::Gt,
                Tok::Punct(">=") => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_shift()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_shift(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("<<") => BinOp::Shl,
                Tok::Punct(">>") => BinOp::Shr,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, CcError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CcError> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(self.parse_unary()?) });
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(self.parse_unary()?) });
        }
        if self.eat_punct("+") {
            return self.parse_unary();
        }
        // Cast: `(int) x` / `(float) x`.
        if matches!(self.peek(), Tok::Punct("(")) {
            if let Tok::Ident(name) = &self.tokens[self.pos + 1].tok {
                if matches!(name.as_str(), "int" | "float" | "char")
                    && matches!(&self.tokens[self.pos + 2].tok, Tok::Punct(")"))
                {
                    self.advance(); // (
                    let ty = self.parse_type()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Cast { ty, expr: Box::new(self.parse_unary()?) });
                }
            }
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, CcError> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.eat_punct("[") {
                let index = self.parse_expr()?;
                self.expect_punct("]")?;
                let base = match expr {
                    Expr::Var(name) => name,
                    _ => {
                        return Err(CcError::new(
                            self.line(),
                            "only simple arrays/pointers can be indexed",
                        ));
                    }
                };
                expr = Expr::Index { base, index: Box::new(index) };
            } else if self.eat_punct("++") {
                expr = Expr::PostIncDec { target: Box::new(expr), inc: true };
            } else if self.eat_punct("--") {
                expr = Expr::PostIncDec { target: Box::new(expr), inc: false };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, CcError> {
        let line = self.line();
        match self.advance() {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Float(v) => Ok(Expr::FloatLit(v)),
            Tok::Char(v) => Ok(Expr::CharLit(v)),
            Tok::Punct("(") => {
                let inner = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            Tok::Ident(name) => {
                if KEYWORDS.contains(&name.as_str()) {
                    return Err(CcError::new(line, format!("unexpected keyword `{name}`")));
                }
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(CcError::new(line, format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> Unit {
        parse(&tokenize(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> CcError {
        parse(&tokenize(src).unwrap()).unwrap_err()
    }

    #[test]
    fn globals_scalars_arrays_extern() {
        let unit = parse_src(
            "int x = 5;\nfloat pi = 3.5;\nint arr[4] = {1, 2, 3, 4};\nextern int data[];\nchar c = 'a';\nint zeros[8];\n",
        );
        assert_eq!(unit.globals.len(), 6);
        assert_eq!(unit.globals[0].init, vec![Const::Int(5)]);
        assert_eq!(unit.globals[1].ty, CType::Float);
        assert_eq!(unit.globals[2].array_size, Some(4));
        assert!(unit.globals[3].is_extern);
        assert_eq!(unit.globals[3].array_size, Some(0));
        assert_eq!(unit.globals[4].init, vec![Const::Int(97)]);
        assert_eq!(unit.globals[5].array_size, Some(8));
        assert!(unit.globals[5].init.is_empty());
    }

    #[test]
    fn function_with_params_and_body() {
        let unit = parse_src(
            "int add(int a, int b) { return a + b; }\nvoid nothing(void) { return; }\nfloat scale(float x, float f[]) { return x * f[0]; }",
        );
        assert_eq!(unit.functions.len(), 3);
        let add = &unit.functions[0];
        assert_eq!(add.params.len(), 2);
        assert!(matches!(add.body[0], Stmt::Return { .. }));
        let scale = &unit.functions[2];
        assert_eq!(scale.params[1].ty, CType::Ptr(Box::new(CType::Float)));
    }

    #[test]
    fn control_flow_statements() {
        let unit = parse_src(
            "int main(void) {
                int s = 0;
                for (int i = 0; i < 10; i++) {
                    if (i % 2 == 0) { s += i; } else { s -= 1; }
                    while (s > 100) { s = s / 2; break; }
                }
                return s;
            }",
        );
        let body = &unit.functions[0].body;
        assert!(matches!(body[0], Stmt::Decl { .. }));
        assert!(matches!(body[1], Stmt::For { .. }));
        if let Stmt::For { init, cond, step, body: fb, .. } = &body[1] {
            assert!(init.is_some());
            assert!(cond.is_some());
            assert!(step.is_some());
            assert!(matches!(fb[0], Stmt::If { .. }));
            assert!(matches!(fb[1], Stmt::While { .. }));
        }
    }

    #[test]
    fn expression_precedence() {
        let unit = parse_src("int main(void) { return 1 + 2 * 3 < 4 && 5 == 5; }");
        if let Stmt::Return { value: Some(expr), .. } = &unit.functions[0].body[0] {
            // Top level must be &&.
            assert!(matches!(expr, Expr::Binary { op: BinOp::And, .. }));
            if let Expr::Binary { lhs, .. } = expr {
                assert!(matches!(**lhs, Expr::Binary { op: BinOp::Lt, .. }));
            }
        } else {
            panic!("expected return statement");
        }
    }

    #[test]
    fn assignment_and_compound() {
        let unit =
            parse_src("int main(void) { int a = 1; a = a + 1; a += 2; a *= 3; a[0]; return a; }");
        let body = &unit.functions[0].body;
        assert!(matches!(&body[1], Stmt::Expr { expr: Expr::Assign { op: None, .. }, .. }));
        assert!(matches!(
            &body[2],
            Stmt::Expr { expr: Expr::Assign { op: Some(BinOp::Add), .. }, .. }
        ));
        assert!(matches!(
            &body[3],
            Stmt::Expr { expr: Expr::Assign { op: Some(BinOp::Mul), .. }, .. }
        ));
    }

    #[test]
    fn calls_indexing_casts_incdec() {
        let unit = parse_src(
            "int main(void) { int a[4]; a[1] = f(a[0], 2) + (int)1.5; a[1]++; return g(); }",
        );
        let body = &unit.functions[0].body;
        if let Stmt::Expr { expr: Expr::Assign { target, value, .. }, .. } = &body[1] {
            assert!(matches!(**target, Expr::Index { .. }));
            if let Expr::Binary { lhs, rhs, .. } = &**value {
                assert!(matches!(**lhs, Expr::Call { .. }));
                assert!(matches!(**rhs, Expr::Cast { .. }));
            }
        } else {
            panic!("expected assignment");
        }
        assert!(matches!(&body[2], Stmt::Expr { expr: Expr::PostIncDec { inc: true, .. }, .. }));
    }

    #[test]
    fn parse_errors_carry_lines() {
        let e = parse_err("int main(void) {\n  int x = ;\n}");
        assert_eq!(e.line, 2);
        let e = parse_err("int main(void) { return 1 }");
        assert!(e.message.contains("expected `;`"));
        let e = parse_err("int main(void) { 1 = 2; }");
        assert!(e.message.contains("assignment target"));
        let e = parse_err("blob main(void) { }");
        assert!(e.message.contains("unknown type") || e.message.contains("expected"));
    }

    #[test]
    fn forward_declarations_are_skipped() {
        let unit = parse_src("int helper(int x);\nint main(void) { return helper(1); }");
        assert_eq!(unit.functions.len(), 1);
        assert_eq!(unit.functions[0].name, "main");
    }
}
