//! RV32IM+F assembly code generation.
//!
//! The generator is deliberately straightforward (one pass over the AST, no
//! IR) — the point of the reproduced system is to *show* students how C maps
//! to assembly, and a transparent mapping plus visibly different `-O` levels
//! serves that goal better than a black-box optimizer.

// Index loops compute stack offsets from the loop variable; iterators would
// obscure the offset arithmetic.
#![allow(clippy::needless_range_loop)]

use crate::ast::*;
use crate::{CcError, CompileOutput, OptLevel};
use std::collections::HashMap;

const INT_TEMPS: &[&str] = &["t0", "t1", "t2", "t3", "t4", "t5", "t6"];
const FLOAT_TEMPS: &[&str] = &["ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7"];
const INT_SAVED: &[&str] = &["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"];
const FLOAT_SAVED: &[&str] = &["fs0", "fs1", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7"];
const INT_ARGS: &[&str] = &["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"];
const FLOAT_ARGS: &[&str] = &["fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7"];
/// Scratch area (bytes) reserved in every frame for spilling live temporaries
/// around calls: 8 integer + 8 float slots.
const SCRATCH_BYTES: i64 = 64;

/// Simplified expression type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Float,
}

#[derive(Debug, Clone)]
enum Storage {
    Stack(i64),
    Reg(&'static str),
    Global,
}

#[derive(Debug, Clone)]
struct VarInfo {
    ty: CType,
    is_array: bool,
    storage: Storage,
}

#[derive(Debug, Clone)]
struct Val {
    reg: String,
    ty: Ty,
}

/// Generate assembly for a whole translation unit.
pub fn generate(unit: &Unit, opt: OptLevel) -> Result<CompileOutput, CcError> {
    let mut g = Generator {
        lines: Vec::new(),
        line_map: Vec::new(),
        labels: 0,
        opt,
        globals: HashMap::new(),
        functions: HashMap::new(),
    };
    for global in &unit.globals {
        g.globals.insert(global.name.clone(), global.clone());
    }
    for f in &unit.functions {
        g.functions.insert(f.name.clone(), (f.ret.clone(), f.params.clone()));
    }
    if !unit.functions.iter().any(|f| f.name == "main") {
        return Err(CcError::new(1, "program has no `main` function"));
    }

    g.raw("    .text");
    for f in &unit.functions {
        g.gen_function(f)?;
    }
    g.emit_globals(unit);

    let mut assembly = g.lines.join("\n");
    assembly.push('\n');
    Ok(CompileOutput { assembly, line_map: g.line_map })
}

struct Generator {
    lines: Vec<String>,
    line_map: Vec<(usize, usize)>,
    labels: usize,
    opt: OptLevel,
    globals: HashMap<String, Global>,
    functions: HashMap<String, (CType, Vec<Param>)>,
}

struct FnCtx {
    vars: HashMap<String, VarInfo>,
    ret: CType,
    exit_label: String,
    frame: i64,
    scratch_base: i64,
    int_depth: usize,
    float_depth: usize,
    loop_stack: Vec<(String, String)>, // (break label, continue label)
    used_int_saved: usize,
    used_float_saved: usize,
}

impl Generator {
    fn raw(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    fn emit(&mut self, s: impl Into<String>) {
        self.lines.push(format!("    {}", s.into()));
    }

    fn label(&mut self, prefix: &str) -> String {
        self.labels += 1;
        format!(".L{}_{}", prefix, self.labels)
    }

    fn map(&mut self, c_line: usize) {
        self.line_map.push((c_line, self.lines.len() + 1));
    }

    // --------------------------------------------------------------- globals

    fn emit_globals(&mut self, unit: &Unit) {
        let has_data = unit.globals.iter().any(|g| !g.is_extern);
        if !has_data {
            return;
        }
        self.raw("");
        self.raw("    .data");
        for global in &unit.globals {
            if global.is_extern {
                continue; // storage provided by the Memory Settings window
            }
            let elem = global.ty.size().max(1);
            let count = global.array_size.unwrap_or(1).max(1);
            if elem >= 4 {
                self.raw("    .align 2");
            }
            self.raw(format!("{}:", global.name));
            if global.init.is_empty() {
                self.raw(format!("    .zero {}", elem * count));
            } else {
                let values: Vec<String> = (0..count)
                    .map(|i| match global.init.get(i) {
                        Some(Const::Int(v)) => {
                            if global.ty.is_float() {
                                format!("{:.1}", *v as f32)
                            } else {
                                v.to_string()
                            }
                        }
                        Some(Const::Float(v)) => format!("{v}"),
                        None => "0".to_string(),
                    })
                    .collect();
                let directive = match (global.ty.is_float(), elem) {
                    (true, _) => ".float",
                    (false, 1) => ".byte",
                    _ => ".word",
                };
                self.raw(format!("    {} {}", directive, values.join(", ")));
            }
        }
    }

    // ------------------------------------------------------------- functions

    fn gen_function(&mut self, f: &Function) -> Result<(), CcError> {
        // Collect every local declaration (parameters first).
        let mut locals: Vec<(String, CType, Option<usize>)> =
            f.params.iter().map(|p| (p.name.clone(), p.ty.clone(), None)).collect();
        collect_locals(&f.body, &mut locals);

        let mut ctx = FnCtx {
            vars: HashMap::new(),
            ret: f.ret.clone(),
            exit_label: format!(".L{}_exit", f.name),
            frame: 0,
            scratch_base: 0,
            int_depth: 0,
            float_depth: 0,
            loop_stack: Vec::new(),
            used_int_saved: 0,
            used_float_saved: 0,
        };

        // Storage assignment.
        let mut stack_cursor: i64 = 0;
        for (name, ty, array) in &locals {
            let storage = if array.is_none() && self.opt.registers_for_locals() {
                if ty.is_float() && ctx.used_float_saved < FLOAT_SAVED.len() {
                    let reg = FLOAT_SAVED[ctx.used_float_saved];
                    ctx.used_float_saved += 1;
                    Storage::Reg(reg)
                } else if !ty.is_float() && ctx.used_int_saved < INT_SAVED.len() {
                    let reg = INT_SAVED[ctx.used_int_saved];
                    ctx.used_int_saved += 1;
                    Storage::Reg(reg)
                } else {
                    let off = stack_cursor;
                    stack_cursor += 4;
                    Storage::Stack(off)
                }
            } else {
                let bytes = match array {
                    Some(n) => ((ty.size().max(1) * n.max(&1)) as i64 + 3) / 4 * 4,
                    None => 4,
                };
                let off = stack_cursor;
                stack_cursor += bytes;
                Storage::Stack(off)
            };
            ctx.vars.insert(
                name.clone(),
                VarInfo { ty: ty.clone(), is_array: array.is_some(), storage },
            );
        }
        ctx.scratch_base = stack_cursor;
        let saved_bytes = (ctx.used_int_saved + ctx.used_float_saved) as i64 * 4;
        let frame = stack_cursor + SCRATCH_BYTES + saved_bytes + 4; // + ra
        ctx.frame = (frame + 15) / 16 * 16;

        // Prologue.
        self.raw("");
        self.map(f.line);
        self.raw(format!("{}:", f.name));
        self.emit(format!("addi sp, sp, -{}", ctx.frame));
        self.emit(format!("sw   ra, {}(sp)", ctx.frame - 4));
        for i in 0..ctx.used_int_saved {
            self.emit(format!(
                "sw   {}, {}(sp)",
                INT_SAVED[i],
                ctx.scratch_base + SCRATCH_BYTES + (i as i64) * 4
            ));
        }
        for i in 0..ctx.used_float_saved {
            self.emit(format!(
                "fsw  {}, {}(sp)",
                FLOAT_SAVED[i],
                ctx.scratch_base + SCRATCH_BYTES + ((ctx.used_int_saved + i) as i64) * 4
            ));
        }

        // Move incoming arguments into their home locations.
        let mut int_arg = 0usize;
        let mut float_arg = 0usize;
        for p in &f.params {
            let incoming = if p.ty.is_float() {
                let r = FLOAT_ARGS.get(float_arg).copied();
                float_arg += 1;
                r
            } else {
                let r = INT_ARGS.get(int_arg).copied();
                int_arg += 1;
                r
            };
            let Some(incoming) = incoming else {
                return Err(CcError::new(f.line, format!("too many parameters in `{}`", f.name)));
            };
            let info = ctx.vars[&p.name].clone();
            match info.storage {
                Storage::Reg(home) => {
                    if p.ty.is_float() {
                        self.emit(format!("fmv.s {home}, {incoming}"));
                    } else {
                        self.emit(format!("mv   {home}, {incoming}"));
                    }
                }
                Storage::Stack(off) => {
                    if p.ty.is_float() {
                        self.emit(format!("fsw  {incoming}, {off}(sp)"));
                    } else {
                        self.emit(format!("sw   {incoming}, {off}(sp)"));
                    }
                }
                Storage::Global => unreachable!("parameters are never global"),
            }
        }

        // Body.
        self.gen_block(&f.body, &mut ctx)?;

        // Epilogue.
        self.raw(format!("{}:", ctx.exit_label));
        for i in 0..ctx.used_int_saved {
            self.emit(format!(
                "lw   {}, {}(sp)",
                INT_SAVED[i],
                ctx.scratch_base + SCRATCH_BYTES + (i as i64) * 4
            ));
        }
        for i in 0..ctx.used_float_saved {
            self.emit(format!(
                "flw  {}, {}(sp)",
                FLOAT_SAVED[i],
                ctx.scratch_base + SCRATCH_BYTES + ((ctx.used_int_saved + i) as i64) * 4
            ));
        }
        self.emit(format!("lw   ra, {}(sp)", ctx.frame - 4));
        self.emit(format!("addi sp, sp, {}", ctx.frame));
        self.emit("ret");
        Ok(())
    }

    fn gen_block(&mut self, body: &[Stmt], ctx: &mut FnCtx) -> Result<(), CcError> {
        for stmt in body {
            self.gen_stmt(stmt, ctx)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, stmt: &Stmt, ctx: &mut FnCtx) -> Result<(), CcError> {
        ctx.int_depth = 0;
        ctx.float_depth = 0;
        match stmt {
            Stmt::Block { body } => self.gen_block(body, ctx),
            Stmt::Decl { name, ty, array_size, init, line } => {
                self.map(*line);
                if let Some(init) = init {
                    if array_size.is_some() {
                        return Err(CcError::new(
                            *line,
                            "local array initializers are not supported",
                        ));
                    }
                    let value = self.gen_expr(init, ctx, *line)?;
                    let want = if ty.is_float() { Ty::Float } else { Ty::Int };
                    let value = self.convert(value, want, ctx);
                    self.store_var(name, &value, ctx, *line)?;
                }
                Ok(())
            }
            Stmt::Expr { expr, line } => {
                self.map(*line);
                self.gen_expr(expr, ctx, *line)?;
                Ok(())
            }
            Stmt::If { cond, then, els, line } => {
                self.map(*line);
                let else_label = self.label("else");
                let end_label = self.label("endif");
                let c = self.gen_condition(cond, ctx, *line)?;
                self.emit(format!("beqz {}, {}", c.reg, else_label));
                self.gen_block(then, ctx)?;
                self.emit(format!("j    {end_label}"));
                self.raw(format!("{else_label}:"));
                self.gen_block(els, ctx)?;
                self.raw(format!("{end_label}:"));
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                self.map(*line);
                let head = self.label("while");
                let end = self.label("endwhile");
                self.raw(format!("{head}:"));
                let c = self.gen_condition(cond, ctx, *line)?;
                self.emit(format!("beqz {}, {}", c.reg, end));
                ctx.loop_stack.push((end.clone(), head.clone()));
                self.gen_block(body, ctx)?;
                ctx.loop_stack.pop();
                self.emit(format!("j    {head}"));
                self.raw(format!("{end}:"));
                Ok(())
            }
            Stmt::For { init, cond, step, body, line } => {
                self.map(*line);
                if let Some(init) = init {
                    self.gen_stmt(init, ctx)?;
                }
                let head = self.label("for");
                let step_label = self.label("forstep");
                let end = self.label("endfor");
                self.raw(format!("{head}:"));
                if let Some(cond) = cond {
                    ctx.int_depth = 0;
                    ctx.float_depth = 0;
                    let c = self.gen_condition(cond, ctx, *line)?;
                    self.emit(format!("beqz {}, {}", c.reg, end));
                }
                ctx.loop_stack.push((end.clone(), step_label.clone()));
                self.gen_block(body, ctx)?;
                ctx.loop_stack.pop();
                self.raw(format!("{step_label}:"));
                if let Some(step) = step {
                    ctx.int_depth = 0;
                    ctx.float_depth = 0;
                    self.gen_expr(step, ctx, *line)?;
                }
                self.emit(format!("j    {head}"));
                self.raw(format!("{end}:"));
                Ok(())
            }
            Stmt::Return { value, line } => {
                self.map(*line);
                if let Some(value) = value {
                    let v = self.gen_expr(value, ctx, *line)?;
                    if ctx.ret.is_float() {
                        let v = self.convert(v, Ty::Float, ctx);
                        self.emit(format!("fmv.s fa0, {}", v.reg));
                    } else {
                        let v = self.convert(v, Ty::Int, ctx);
                        self.emit(format!("mv   a0, {}", v.reg));
                    }
                }
                self.emit(format!("j    {}", ctx.exit_label));
                Ok(())
            }
            Stmt::Break { line } => {
                let Some((end, _)) = ctx.loop_stack.last().cloned() else {
                    return Err(CcError::new(*line, "`break` outside of a loop"));
                };
                self.map(*line);
                self.emit(format!("j    {end}"));
                Ok(())
            }
            Stmt::Continue { line } => {
                let Some((_, cont)) = ctx.loop_stack.last().cloned() else {
                    return Err(CcError::new(*line, "`continue` outside of a loop"));
                };
                self.map(*line);
                self.emit(format!("j    {cont}"));
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------ expression

    fn alloc_int(&mut self, ctx: &mut FnCtx, line: usize) -> Result<String, CcError> {
        let reg = INT_TEMPS.get(ctx.int_depth).ok_or_else(|| {
            CcError::new(line, "expression too complex (ran out of integer temporaries)")
        })?;
        ctx.int_depth += 1;
        Ok(reg.to_string())
    }

    fn alloc_float(&mut self, ctx: &mut FnCtx, line: usize) -> Result<String, CcError> {
        let reg = FLOAT_TEMPS.get(ctx.float_depth).ok_or_else(|| {
            CcError::new(line, "expression too complex (ran out of float temporaries)")
        })?;
        ctx.float_depth += 1;
        Ok(reg.to_string())
    }

    fn free(&mut self, val: &Val, ctx: &mut FnCtx) {
        if val.reg.starts_with("ft") {
            ctx.float_depth = ctx.float_depth.saturating_sub(1);
        } else if val.reg.starts_with('t') {
            ctx.int_depth = ctx.int_depth.saturating_sub(1);
        }
    }

    fn convert(&mut self, val: Val, want: Ty, ctx: &mut FnCtx) -> Val {
        if val.ty == want {
            return val;
        }
        match want {
            Ty::Float => {
                // Reuse the float temp slot; the int temp is freed.
                let reg = FLOAT_TEMPS[ctx.float_depth.min(FLOAT_TEMPS.len() - 1)].to_string();
                ctx.float_depth = (ctx.float_depth + 1).min(FLOAT_TEMPS.len());
                self.emit(format!("fcvt.s.w {}, {}", reg, val.reg));
                self.free(&Val { reg: val.reg, ty: Ty::Int }, ctx);
                Val { reg, ty: Ty::Float }
            }
            Ty::Int => {
                let reg = INT_TEMPS[ctx.int_depth.min(INT_TEMPS.len() - 1)].to_string();
                ctx.int_depth = (ctx.int_depth + 1).min(INT_TEMPS.len());
                self.emit(format!("fcvt.w.s {}, {}", reg, val.reg));
                self.free(&Val { reg: val.reg, ty: Ty::Float }, ctx);
                Val { reg, ty: Ty::Int }
            }
        }
    }

    /// Evaluate a condition and make sure the result is an integer 0/1.
    fn gen_condition(&mut self, cond: &Expr, ctx: &mut FnCtx, line: usize) -> Result<Val, CcError> {
        let v = self.gen_expr(cond, ctx, line)?;
        self.truthify(v, ctx, line)
    }

    fn truthify(&mut self, val: Val, ctx: &mut FnCtx, line: usize) -> Result<Val, CcError> {
        match val.ty {
            Ty::Int => Ok(val),
            Ty::Float => {
                let zero = self.alloc_float(ctx, line)?;
                self.emit(format!("fmv.w.x {zero}, x0"));
                let out = self.alloc_int(ctx, line)?;
                self.emit(format!("feq.s {out}, {}, {zero}", val.reg));
                self.emit(format!("xori {out}, {out}, 1"));
                ctx.float_depth = ctx.float_depth.saturating_sub(2);
                Ok(Val { reg: out, ty: Ty::Int })
            }
        }
    }

    fn gen_expr(&mut self, expr: &Expr, ctx: &mut FnCtx, line: usize) -> Result<Val, CcError> {
        let expr = if self.opt.fold_constants() { fold(expr) } else { expr.clone() };
        self.gen_expr_inner(&expr, ctx, line)
    }

    fn gen_expr_inner(
        &mut self,
        expr: &Expr,
        ctx: &mut FnCtx,
        line: usize,
    ) -> Result<Val, CcError> {
        match expr {
            Expr::IntLit(v) => {
                let reg = self.alloc_int(ctx, line)?;
                self.emit(format!("li   {reg}, {v}"));
                Ok(Val { reg, ty: Ty::Int })
            }
            Expr::CharLit(v) => {
                let reg = self.alloc_int(ctx, line)?;
                self.emit(format!("li   {reg}, {v}"));
                Ok(Val { reg, ty: Ty::Int })
            }
            Expr::FloatLit(v) => {
                let bits = v.to_bits();
                let int = self.alloc_int(ctx, line)?;
                self.emit(format!("li   {int}, {}", bits as i32));
                let reg = self.alloc_float(ctx, line)?;
                self.emit(format!("fmv.w.x {reg}, {int}"));
                ctx.int_depth -= 1;
                Ok(Val { reg, ty: Ty::Float })
            }
            Expr::Var(name) => self.load_var(name, ctx, line),
            Expr::Index { base, index } => {
                let (addr, elem) = self.gen_element_address(base, index, ctx, line)?;
                if elem.is_float() {
                    let reg = self.alloc_float(ctx, line)?;
                    self.emit(format!("flw  {reg}, 0({})", addr));
                    // Free the address temp; the float result lives in its own class.
                    ctx.int_depth = ctx.int_depth.saturating_sub(1);
                    Ok(Val { reg, ty: Ty::Float })
                } else {
                    // Reuse the address register for the loaded value.
                    let op = if elem.size() == 1 { "lb  " } else { "lw  " };
                    self.emit(format!("{op} {addr}, 0({addr})"));
                    Ok(Val { reg: addr, ty: Ty::Int })
                }
            }
            Expr::Unary { op, expr } => {
                let v = self.gen_expr_inner(expr, ctx, line)?;
                match op {
                    UnOp::Neg => {
                        if v.ty == Ty::Float {
                            self.emit(format!("fneg.s {}, {}", v.reg, v.reg));
                        } else {
                            self.emit(format!("neg  {}, {}", v.reg, v.reg));
                        }
                        Ok(v)
                    }
                    UnOp::Not => {
                        let t = self.truthify(v, ctx, line)?;
                        self.emit(format!("seqz {}, {}", t.reg, t.reg));
                        Ok(t)
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => self.gen_binary(*op, lhs, rhs, ctx, line),
            Expr::Assign { target, op, value } => self.gen_assign(target, *op, value, ctx, line),
            Expr::Call { name, args } => self.gen_call(name, args, ctx, line),
            Expr::PostIncDec { target, inc } => {
                let old = self.gen_expr_inner(target, ctx, line)?;
                let delta = if *inc { 1 } else { -1 };
                let new = if old.ty == Ty::Float {
                    let one_bits = 1.0f32.to_bits() as i32;
                    let i = self.alloc_int(ctx, line)?;
                    self.emit(format!("li   {i}, {one_bits}"));
                    let f = self.alloc_float(ctx, line)?;
                    self.emit(format!("fmv.w.x {f}, {i}"));
                    let result = self.alloc_float(ctx, line)?;
                    if *inc {
                        self.emit(format!("fadd.s {result}, {}, {f}", old.reg));
                    } else {
                        self.emit(format!("fsub.s {result}, {}, {f}", old.reg));
                    }
                    ctx.int_depth -= 1;
                    Val { reg: result, ty: Ty::Float }
                } else {
                    let result = self.alloc_int(ctx, line)?;
                    self.emit(format!("addi {result}, {}, {delta}", old.reg));
                    Val { reg: result, ty: Ty::Int }
                };
                self.store_target(target, &new, ctx, line)?;
                self.free(&new, ctx);
                if new.ty == Ty::Float {
                    ctx.float_depth = ctx.float_depth.saturating_sub(1);
                }
                Ok(old)
            }
            Expr::Cast { ty, expr } => {
                let v = self.gen_expr_inner(expr, ctx, line)?;
                let want = if ty.is_float() { Ty::Float } else { Ty::Int };
                Ok(self.convert(v, want, ctx))
            }
        }
    }

    fn gen_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        ctx: &mut FnCtx,
        line: usize,
    ) -> Result<Val, CcError> {
        // Short-circuit logical operators.
        if op.is_logical() {
            let end = self.label("sc");
            let l = self.gen_expr_inner(lhs, ctx, line)?;
            let l = self.truthify(l, ctx, line)?;
            let result = l.reg.clone();
            match op {
                BinOp::And => self.emit(format!("beqz {result}, {end}")),
                BinOp::Or => self.emit(format!("bnez {result}, {end}")),
                _ => unreachable!(),
            }
            let r = self.gen_expr_inner(rhs, ctx, line)?;
            let r = self.truthify(r, ctx, line)?;
            self.emit(format!("snez {result}, {}", r.reg));
            self.free(&r, ctx);
            self.raw(format!("{end}:"));
            return Ok(Val { reg: result, ty: Ty::Int });
        }

        // Strength reduction: multiplication / division by a power of two.
        // Modulo is NOT reduced: `andi` computes a two's-complement mask, which
        // differs from C's truncating `%` for negative operands.  Divisors
        // above 2^30 are left to the mul/div units: their shift counts would
        // not fit the 5-bit shamt field of RV32 shift instructions.
        if self.opt.strength_reduction() {
            if let Expr::IntLit(c) = rhs {
                if *c > 0
                    && *c <= (1 << 30)
                    && (*c as u64).is_power_of_two()
                    && matches!(op, BinOp::Mul | BinOp::Div)
                {
                    let shift = (*c as u64).trailing_zeros();
                    let l = self.gen_expr_inner(lhs, ctx, line)?;
                    if l.ty == Ty::Int {
                        match op {
                            BinOp::Mul => {
                                self.emit(format!("slli {}, {}, {}", l.reg, l.reg, shift))
                            }
                            BinOp::Div if shift == 0 => {} // x / 1 == x
                            BinOp::Div => {
                                // A bare `srai` rounds toward -inf; C division
                                // truncates toward zero.  Bias negative values
                                // by (2^shift - 1) first.
                                let bias = self.alloc_int(ctx, line)?;
                                self.emit(format!("srai {bias}, {}, 31", l.reg));
                                self.emit(format!("srli {bias}, {bias}, {}", 32 - shift));
                                self.emit(format!("add  {}, {}, {bias}", l.reg, l.reg));
                                self.emit(format!("srai {}, {}, {}", l.reg, l.reg, shift));
                                self.free(&Val { reg: bias, ty: Ty::Int }, ctx);
                            }
                            _ => unreachable!(),
                        }
                        return Ok(l);
                    }
                    // Fall through for float operands.
                    let r = self.gen_expr_inner(rhs, ctx, line)?;
                    return self.finish_binary(op, l, r, ctx, line);
                }
            }
        }

        let l = self.gen_expr_inner(lhs, ctx, line)?;
        let r = self.gen_expr_inner(rhs, ctx, line)?;
        self.finish_binary(op, l, r, ctx, line)
    }

    fn finish_binary(
        &mut self,
        op: BinOp,
        l: Val,
        r: Val,
        ctx: &mut FnCtx,
        line: usize,
    ) -> Result<Val, CcError> {
        let float = l.ty == Ty::Float || r.ty == Ty::Float;
        if float {
            let l = self.convert(l, Ty::Float, ctx);
            let r = self.convert(r, Ty::Float, ctx);
            if op.is_comparison() {
                let out = self.alloc_int(ctx, line)?;
                match op {
                    BinOp::Lt => self.emit(format!("flt.s {out}, {}, {}", l.reg, r.reg)),
                    BinOp::Le => self.emit(format!("fle.s {out}, {}, {}", l.reg, r.reg)),
                    BinOp::Gt => self.emit(format!("flt.s {out}, {}, {}", r.reg, l.reg)),
                    BinOp::Ge => self.emit(format!("fle.s {out}, {}, {}", r.reg, l.reg)),
                    BinOp::Eq => self.emit(format!("feq.s {out}, {}, {}", l.reg, r.reg)),
                    BinOp::Ne => {
                        self.emit(format!("feq.s {out}, {}, {}", l.reg, r.reg));
                        self.emit(format!("xori {out}, {out}, 1"));
                    }
                    _ => unreachable!(),
                }
                self.free(&r, ctx);
                self.free(&l, ctx);
                return Ok(Val { reg: out, ty: Ty::Int });
            }
            let mnemonic = match op {
                BinOp::Add => "fadd.s",
                BinOp::Sub => "fsub.s",
                BinOp::Mul => "fmul.s",
                BinOp::Div => "fdiv.s",
                other => {
                    return Err(CcError::new(
                        line,
                        format!("operator {other:?} not supported on float"),
                    ));
                }
            };
            self.emit(format!("{mnemonic} {}, {}, {}", l.reg, l.reg, r.reg));
            self.free(&r, ctx);
            return Ok(l);
        }

        // Integer path.
        if op.is_comparison() {
            match op {
                BinOp::Lt => self.emit(format!("slt  {}, {}, {}", l.reg, l.reg, r.reg)),
                BinOp::Gt => self.emit(format!("slt  {}, {}, {}", l.reg, r.reg, l.reg)),
                BinOp::Le => {
                    self.emit(format!("slt  {}, {}, {}", l.reg, r.reg, l.reg));
                    self.emit(format!("xori {}, {}, 1", l.reg, l.reg));
                }
                BinOp::Ge => {
                    self.emit(format!("slt  {}, {}, {}", l.reg, l.reg, r.reg));
                    self.emit(format!("xori {}, {}, 1", l.reg, l.reg));
                }
                BinOp::Eq => {
                    self.emit(format!("sub  {}, {}, {}", l.reg, l.reg, r.reg));
                    self.emit(format!("seqz {}, {}", l.reg, l.reg));
                }
                BinOp::Ne => {
                    self.emit(format!("sub  {}, {}, {}", l.reg, l.reg, r.reg));
                    self.emit(format!("snez {}, {}", l.reg, l.reg));
                }
                _ => unreachable!(),
            }
            self.free(&r, ctx);
            return Ok(l);
        }
        let mnemonic = match op {
            BinOp::Add => "add ",
            BinOp::Sub => "sub ",
            BinOp::Mul => "mul ",
            BinOp::Div => "div ",
            BinOp::Mod => "rem ",
            BinOp::BitAnd => "and ",
            BinOp::BitOr => "or  ",
            BinOp::BitXor => "xor ",
            BinOp::Shl => "sll ",
            BinOp::Shr => "sra ",
            _ => unreachable!(),
        };
        self.emit(format!("{mnemonic} {}, {}, {}", l.reg, l.reg, r.reg));
        self.free(&r, ctx);
        Ok(l)
    }

    fn gen_assign(
        &mut self,
        target: &Expr,
        op: Option<BinOp>,
        value: &Expr,
        ctx: &mut FnCtx,
        line: usize,
    ) -> Result<Val, CcError> {
        let rhs = if let Some(op) = op {
            let old = self.gen_expr_inner(target, ctx, line)?;
            let v = self.gen_expr_inner(value, ctx, line)?;
            self.finish_binary(op, old, v, ctx, line)?
        } else {
            self.gen_expr_inner(value, ctx, line)?
        };
        let want = self.target_type(target, ctx, line)?;
        let want_ty = if want.is_float() { Ty::Float } else { Ty::Int };
        let rhs = self.convert(rhs, want_ty, ctx);
        self.store_target(target, &rhs, ctx, line)?;
        Ok(rhs)
    }

    fn gen_call(
        &mut self,
        name: &str,
        args: &[Expr],
        ctx: &mut FnCtx,
        line: usize,
    ) -> Result<Val, CcError> {
        let (ret, params) = self
            .functions
            .get(name)
            .cloned()
            .ok_or_else(|| CcError::new(line, format!("call to unknown function `{name}`")))?;
        if params.len() != args.len() {
            return Err(CcError::new(
                line,
                format!("`{name}` expects {} arguments, got {}", params.len(), args.len()),
            ));
        }
        // Temps live before this call must survive it (t-registers are
        // caller-saved); spill them to the scratch area.
        let live_int = ctx.int_depth;
        let live_float = ctx.float_depth;

        // Evaluate arguments into temporaries.
        let mut arg_vals = Vec::new();
        for (arg, param) in args.iter().zip(&params) {
            let v = self.gen_expr_inner(arg, ctx, line)?;
            let want = if param.ty.is_float() { Ty::Float } else { Ty::Int };
            arg_vals.push(self.convert(v, want, ctx));
        }
        // Move them into the argument registers.
        let mut int_arg = 0usize;
        let mut float_arg = 0usize;
        for (v, param) in arg_vals.iter().zip(&params) {
            if param.ty.is_float() {
                self.emit(format!("fmv.s {}, {}", FLOAT_ARGS[float_arg], v.reg));
                float_arg += 1;
            } else {
                self.emit(format!("mv   {}, {}", INT_ARGS[int_arg], v.reg));
                int_arg += 1;
            }
        }
        // Spill the outer live temporaries.
        for i in 0..live_int {
            self.emit(format!("sw   {}, {}(sp)", INT_TEMPS[i], ctx.scratch_base + (i as i64) * 4));
        }
        for i in 0..live_float {
            self.emit(format!(
                "fsw  {}, {}(sp)",
                FLOAT_TEMPS[i],
                ctx.scratch_base + 32 + (i as i64) * 4
            ));
        }
        self.emit(format!("call {name}"));
        for i in 0..live_int {
            self.emit(format!("lw   {}, {}(sp)", INT_TEMPS[i], ctx.scratch_base + (i as i64) * 4));
        }
        for i in 0..live_float {
            self.emit(format!(
                "flw  {}, {}(sp)",
                FLOAT_TEMPS[i],
                ctx.scratch_base + 32 + (i as i64) * 4
            ));
        }
        // Free argument temporaries, allocate the result.
        for v in arg_vals.iter().rev() {
            self.free(v, ctx);
        }
        if ret.is_float() {
            let reg = self.alloc_float(ctx, line)?;
            self.emit(format!("fmv.s {reg}, fa0"));
            Ok(Val { reg, ty: Ty::Float })
        } else {
            let reg = self.alloc_int(ctx, line)?;
            self.emit(format!("mv   {reg}, a0"));
            Ok(Val { reg, ty: Ty::Int })
        }
    }

    // ------------------------------------------------------- variable access

    fn var_info(&self, name: &str, ctx: &FnCtx, line: usize) -> Result<VarInfo, CcError> {
        if let Some(info) = ctx.vars.get(name) {
            return Ok(info.clone());
        }
        if let Some(global) = self.globals.get(name) {
            return Ok(VarInfo {
                ty: global.ty.clone(),
                is_array: global.array_size.is_some(),
                storage: Storage::Global,
            });
        }
        Err(CcError::new(line, format!("use of undeclared variable `{name}`")))
    }

    fn load_var(&mut self, name: &str, ctx: &mut FnCtx, line: usize) -> Result<Val, CcError> {
        let info = self.var_info(name, ctx, line)?;
        // Arrays decay to their address.
        if info.is_array {
            let reg = self.alloc_int(ctx, line)?;
            match info.storage {
                Storage::Stack(off) => self.emit(format!("addi {reg}, sp, {off}")),
                Storage::Global => self.emit(format!("la   {reg}, {name}")),
                Storage::Reg(_) => unreachable!("arrays are never register-allocated"),
            }
            return Ok(Val { reg, ty: Ty::Int });
        }
        let is_float = info.ty.is_float();
        match info.storage {
            Storage::Reg(home) => {
                if is_float {
                    let reg = self.alloc_float(ctx, line)?;
                    self.emit(format!("fmv.s {reg}, {home}"));
                    Ok(Val { reg, ty: Ty::Float })
                } else {
                    let reg = self.alloc_int(ctx, line)?;
                    self.emit(format!("mv   {reg}, {home}"));
                    Ok(Val { reg, ty: Ty::Int })
                }
            }
            Storage::Stack(off) => {
                if is_float {
                    let reg = self.alloc_float(ctx, line)?;
                    self.emit(format!("flw  {reg}, {off}(sp)"));
                    Ok(Val { reg, ty: Ty::Float })
                } else {
                    let reg = self.alloc_int(ctx, line)?;
                    self.emit(format!("lw   {reg}, {off}(sp)"));
                    Ok(Val { reg, ty: Ty::Int })
                }
            }
            Storage::Global => {
                let addr = self.alloc_int(ctx, line)?;
                self.emit(format!("la   {addr}, {name}"));
                if is_float {
                    let reg = self.alloc_float(ctx, line)?;
                    self.emit(format!("flw  {reg}, 0({addr})"));
                    ctx.int_depth -= 1;
                    Ok(Val { reg, ty: Ty::Float })
                } else {
                    self.emit(format!("lw   {addr}, 0({addr})"));
                    Ok(Val { reg: addr, ty: Ty::Int })
                }
            }
        }
    }

    fn store_var(
        &mut self,
        name: &str,
        value: &Val,
        ctx: &mut FnCtx,
        line: usize,
    ) -> Result<(), CcError> {
        let info = self.var_info(name, ctx, line)?;
        if info.is_array {
            return Err(CcError::new(line, format!("cannot assign to array `{name}`")));
        }
        match info.storage {
            Storage::Reg(home) => {
                if info.ty.is_float() {
                    self.emit(format!("fmv.s {home}, {}", value.reg));
                } else {
                    self.emit(format!("mv   {home}, {}", value.reg));
                }
            }
            Storage::Stack(off) => {
                if info.ty.is_float() {
                    self.emit(format!("fsw  {}, {off}(sp)", value.reg));
                } else {
                    self.emit(format!("sw   {}, {off}(sp)", value.reg));
                }
            }
            Storage::Global => {
                let addr = self.alloc_int(ctx, line)?;
                self.emit(format!("la   {addr}, {name}"));
                if info.ty.is_float() {
                    self.emit(format!("fsw  {}, 0({addr})", value.reg));
                } else {
                    self.emit(format!("sw   {}, 0({addr})", value.reg));
                }
                ctx.int_depth -= 1;
            }
        }
        Ok(())
    }

    fn target_type(&self, target: &Expr, ctx: &FnCtx, line: usize) -> Result<CType, CcError> {
        match target {
            Expr::Var(name) => Ok(self.var_info(name, ctx, line)?.ty),
            Expr::Index { base, .. } => Ok(self.var_info(base, ctx, line)?.ty.element()),
            _ => Err(CcError::new(line, "invalid assignment target")),
        }
    }

    fn store_target(
        &mut self,
        target: &Expr,
        value: &Val,
        ctx: &mut FnCtx,
        line: usize,
    ) -> Result<(), CcError> {
        match target {
            Expr::Var(name) => self.store_var(name, value, ctx, line),
            Expr::Index { base, index } => {
                let (addr, elem) = self.gen_element_address(base, index, ctx, line)?;
                if elem.is_float() {
                    self.emit(format!("fsw  {}, 0({addr})", value.reg));
                } else if elem.size() == 1 {
                    self.emit(format!("sb   {}, 0({addr})", value.reg));
                } else {
                    self.emit(format!("sw   {}, 0({addr})", value.reg));
                }
                ctx.int_depth = ctx.int_depth.saturating_sub(1);
                Ok(())
            }
            _ => Err(CcError::new(line, "invalid assignment target")),
        }
    }

    /// Compute the address of `base[index]` into a fresh integer temporary.
    fn gen_element_address(
        &mut self,
        base: &str,
        index: &Expr,
        ctx: &mut FnCtx,
        line: usize,
    ) -> Result<(String, CType), CcError> {
        let info = self.var_info(base, ctx, line)?;
        let elem = if info.is_array { info.ty.clone() } else { info.ty.element() };
        let elem_size = elem.size().max(1);

        // Base address into a temp.
        let addr = self.alloc_int(ctx, line)?;
        match (&info.storage, info.is_array) {
            (Storage::Stack(off), true) => self.emit(format!("addi {addr}, sp, {off}")),
            (Storage::Global, true) => self.emit(format!("la   {addr}, {base}")),
            // Pointer variable: its value is the base address.
            (Storage::Stack(off), false) => self.emit(format!("lw   {addr}, {off}(sp)")),
            (Storage::Reg(home), false) => self.emit(format!("mv   {addr}, {home}")),
            (Storage::Global, false) => {
                self.emit(format!("la   {addr}, {base}"));
                self.emit(format!("lw   {addr}, 0({addr})"));
            }
            (Storage::Reg(_), true) => unreachable!("arrays are never register-allocated"),
        }

        // Constant index: fold the offset into an addi.
        let folded = if self.opt.fold_constants() { fold(index) } else { index.clone() };
        if let Expr::IntLit(i) = folded {
            let offset = i * elem_size as i64;
            if offset != 0 {
                if (-2048..=2047).contains(&offset) {
                    self.emit(format!("addi {addr}, {addr}, {offset}"));
                } else {
                    let idx = self.alloc_int(ctx, line)?;
                    self.emit(format!("li   {idx}, {offset}"));
                    self.emit(format!("add  {addr}, {addr}, {idx}"));
                    ctx.int_depth -= 1;
                }
            }
            return Ok((addr, elem));
        }

        let idx = self.gen_expr_inner(index, ctx, line)?;
        let idx = self.convert(idx, Ty::Int, ctx);
        if elem_size > 1 {
            let shift = (elem_size as u64).trailing_zeros();
            self.emit(format!("slli {}, {}, {}", idx.reg, idx.reg, shift));
        }
        self.emit(format!("add  {addr}, {addr}, {}", idx.reg));
        self.free(&idx, ctx);
        Ok((addr, elem))
    }
}

/// Collect every local declaration in a statement tree.
fn collect_locals(body: &[Stmt], out: &mut Vec<(String, CType, Option<usize>)>) {
    for stmt in body {
        match stmt {
            Stmt::Decl { name, ty, array_size, .. } if !out.iter().any(|(n, _, _)| n == name) => {
                out.push((name.clone(), ty.clone(), *array_size));
            }
            Stmt::Decl { .. } => {}
            Stmt::Block { body } => collect_locals(body, out),
            Stmt::If { then, els, .. } => {
                collect_locals(then, out);
                collect_locals(els, out);
            }
            Stmt::While { body, .. } => collect_locals(body, out),
            Stmt::For { init, body, .. } => {
                if let Some(init) = init {
                    collect_locals(std::slice::from_ref(init), out);
                }
                collect_locals(body, out);
            }
            _ => {}
        }
    }
}

/// Constant folding over the expression tree (applied at `-O1` and above).
pub fn fold(expr: &Expr) -> Expr {
    match expr {
        Expr::Binary { op, lhs, rhs } => {
            let lhs = fold(lhs);
            let rhs = fold(rhs);
            if let (Expr::IntLit(a), Expr::IntLit(b)) = (&lhs, &rhs) {
                let result = match op {
                    BinOp::Add => Some(a.wrapping_add(*b)),
                    BinOp::Sub => Some(a.wrapping_sub(*b)),
                    BinOp::Mul => Some(a.wrapping_mul(*b)),
                    BinOp::Div if *b != 0 => Some(a.wrapping_div(*b)),
                    BinOp::Mod if *b != 0 => Some(a.wrapping_rem(*b)),
                    BinOp::Lt => Some((a < b) as i64),
                    BinOp::Le => Some((a <= b) as i64),
                    BinOp::Gt => Some((a > b) as i64),
                    BinOp::Ge => Some((a >= b) as i64),
                    BinOp::Eq => Some((a == b) as i64),
                    BinOp::Ne => Some((a != b) as i64),
                    BinOp::BitAnd => Some(a & b),
                    BinOp::BitOr => Some(a | b),
                    BinOp::BitXor => Some(a ^ b),
                    BinOp::Shl => Some(a << (b & 31)),
                    BinOp::Shr => Some(a >> (b & 31)),
                    _ => None,
                };
                if let Some(v) = result {
                    return Expr::IntLit(v);
                }
            }
            if let (Expr::FloatLit(a), Expr::FloatLit(b)) = (&lhs, &rhs) {
                let result = match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div => Some(a / b),
                    _ => None,
                };
                if let Some(v) = result {
                    return Expr::FloatLit(v);
                }
            }
            // Algebraic identities: x+0, x*1, x*0.
            if let Expr::IntLit(0) = rhs {
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    return lhs;
                }
                if matches!(op, BinOp::Mul) {
                    return Expr::IntLit(0);
                }
            }
            if let Expr::IntLit(1) = rhs {
                if matches!(op, BinOp::Mul | BinOp::Div) {
                    return lhs;
                }
            }
            Expr::Binary { op: *op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
        }
        Expr::Unary { op, expr } => {
            let inner = fold(expr);
            match (op, &inner) {
                (UnOp::Neg, Expr::IntLit(v)) => Expr::IntLit(-v),
                (UnOp::Neg, Expr::FloatLit(v)) => Expr::FloatLit(-v),
                (UnOp::Not, Expr::IntLit(v)) => Expr::IntLit((*v == 0) as i64),
                _ => Expr::Unary { op: *op, expr: Box::new(inner) },
            }
        }
        Expr::Assign { target, op, value } => {
            Expr::Assign { target: target.clone(), op: *op, value: Box::new(fold(value)) }
        }
        Expr::Call { name, args } => {
            Expr::Call { name: name.clone(), args: args.iter().map(fold).collect() }
        }
        Expr::Index { base, index } => {
            Expr::Index { base: base.clone(), index: Box::new(fold(index)) }
        }
        Expr::Cast { ty, expr } => {
            let inner = fold(expr);
            match (&ty, &inner) {
                (CType::Float, Expr::IntLit(v)) => Expr::FloatLit(*v as f32),
                (CType::Int, Expr::FloatLit(v)) => Expr::IntLit(*v as i64),
                _ => Expr::Cast { ty: ty.clone(), expr: Box::new(inner) },
            }
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, OptLevel};

    fn asm(src: &str, opt: OptLevel) -> String {
        compile(src, opt).expect("compiles").assembly
    }

    #[test]
    fn simple_function_shape() {
        let a = asm("int main(void) { return 7; }", OptLevel::O0);
        assert!(a.contains("main:"));
        assert!(a.contains("addi sp, sp,"));
        assert!(a.contains("ret"));
        assert!(a.contains("li   t0, 7"));
        assert!(a.contains("mv   a0, t0"));
    }

    #[test]
    fn globals_emitted_as_data() {
        let a = asm(
            "int x = 5; int arr[3] = {1,2}; float f = 2.5; char c = 'a'; extern int ext[]; int main(void){ return x; }",
            OptLevel::O0,
        );
        assert!(a.contains("x:\n    .word 5"));
        assert!(a.contains("arr:\n    .word 1, 2, 0"));
        assert!(a.contains("f:\n    .float 2.5"));
        assert!(a.contains("c:\n    .byte 97"));
        assert!(!a.contains("ext:"), "extern arrays get no storage");
    }

    #[test]
    fn constant_folding_only_at_o1() {
        let src = "int main(void) { return 2 * 3 + 4; }";
        let o0 = asm(src, OptLevel::O0);
        let o1 = asm(src, OptLevel::O1);
        assert!(o0.contains("mul"), "O0 keeps the multiplication");
        assert!(!o1.contains("mul"), "O1 folds it away");
        assert!(o1.contains("li   t0, 10"));
    }

    #[test]
    fn register_allocation_at_o2_reduces_memory_traffic() {
        let src = "int main(void) { int s = 0; int i; for (i = 0; i < 100; i++) { s = s + i; } return s; }";
        let o0 = asm(src, OptLevel::O0);
        let o2 = asm(src, OptLevel::O2);
        let count =
            |text: &str, pat: &str| text.lines().filter(|l| l.trim().starts_with(pat)).count();
        assert!(
            count(&o2, "lw") < count(&o0, "lw"),
            "O2 must load locals from memory less often (O0 {} vs O2 {})",
            count(&o0, "lw"),
            count(&o2, "lw")
        );
        assert!(o2.contains("s1"), "O2 uses callee-saved registers for locals");
    }

    #[test]
    fn strength_reduction_at_o3() {
        let src = "int main(void) { int x = 20; return x * 8 + x / 4 + x % 2; }";
        let o2 = asm(src, OptLevel::O2);
        let o3 = asm(src, OptLevel::O3);
        assert!(o2.contains("mul"));
        assert!(!o3.contains("mul "), "O3 turns *8 into a shift");
        assert!(o3.contains("slli"));
        assert!(o3.contains("srai"));
        // `%` must keep the real `rem`: an `andi` mask would be wrong for
        // negative operands (C's `%` truncates toward zero).
        assert!(o3.contains("rem"));
    }

    #[test]
    fn huge_power_of_two_divisors_fall_through_to_div() {
        // 2^33 fits an i64 literal but not a 5-bit shift amount; the
        // reduction must not fire (it used to panic on `32 - shift`).
        let o3 = asm("int main(void) { int x = 5; return x / 8589934592; }", OptLevel::O3);
        assert!(o3.contains("div"), "huge divisor uses the divide unit");
    }

    #[test]
    fn signed_division_reduction_emits_truncation_bias() {
        // -7/2 is -3 in C; a bare `srai` would give -4, so the reduced
        // division must carry the sign-bias correction (srli of the sign).
        let o3 = asm("int main(void) { int x = -7; return x / 2; }", OptLevel::O3);
        assert!(o3.contains("srai"), "division by 2 is strength-reduced");
        assert!(o3.contains("srli"), "reduced division biases negative operands");
    }

    #[test]
    fn array_indexing_and_element_sizes() {
        let a = asm(
            "int a[8]; char b[8]; float f[8]; int main(void) { a[1] = 2; b[2] = 'x'; f[3] = 1.5; return a[1] + b[2]; }",
            OptLevel::O0,
        );
        assert!(a.contains("sw  "), "word store for int element");
        assert!(a.contains("sb  "), "byte store for char element");
        assert!(a.contains("fsw "), "float store for float element");
        assert!(a.contains("slli") || a.contains("addi"), "index scaling");
    }

    #[test]
    fn calls_pass_arguments_in_abi_registers() {
        let a = asm(
            "int add3(int a, int b, int c) { return a + b + c; }
             float scale(float x) { return x * 2.0; }
             int main(void) { return add3(1, 2, 3) + (int)scale(4.0); }",
            OptLevel::O0,
        );
        assert!(a.contains("call add3"));
        assert!(a.contains("call scale"));
        assert!(a.contains("mv   a2, "), "third int argument in a2");
        assert!(a.contains("fmv.s fa0, "), "float argument in fa0");
        assert!(a.contains("fcvt.w.s"), "cast back to int");
    }

    #[test]
    fn control_flow_labels_and_short_circuit() {
        let a = asm(
            "int main(void) { int i = 0; int s = 0; while (i < 10 && s >= 0) { if (i == 5) { break; } i++; } return i; }",
            OptLevel::O0,
        );
        assert!(a.contains("beqz"));
        assert!(a.contains(".Lwhile"));
        assert!(a.contains(".Lendwhile"));
        assert!(a.contains(".Lsc"), "short-circuit label emitted");
    }

    #[test]
    fn line_map_links_c_lines_to_assembly() {
        let out = compile(
            "int main(void) {\n  int x = 1;\n  int y = 2;\n  return x + y;\n}\n",
            OptLevel::O0,
        )
        .unwrap();
        let c_lines: Vec<usize> = out.line_map.iter().map(|(c, _)| *c).collect();
        assert!(c_lines.contains(&2));
        assert!(c_lines.contains(&3));
        assert!(c_lines.contains(&4));
        // Assembly lines are monotonically increasing with C lines here.
        let asm_lines: Vec<usize> = out.line_map.iter().map(|(_, a)| *a).collect();
        let mut sorted = asm_lines.clone();
        sorted.sort_unstable();
        assert_eq!(asm_lines, sorted);
    }

    #[test]
    fn semantic_errors_are_reported() {
        assert!(compile("int main(void) { return y; }", OptLevel::O0).is_err());
        assert!(compile("int main(void) { return f(1); }", OptLevel::O0).is_err());
        assert!(compile(
            "int f(int a) { return a; } int main(void) { return f(1, 2); }",
            OptLevel::O0
        )
        .is_err());
        assert!(compile("int x = 1;", OptLevel::O0).is_err(), "missing main");
        assert!(compile("int main(void) { break; }", OptLevel::O0).is_err());
        assert!(compile("int main(void) { int a[4] = 3; return 0; }", OptLevel::O0).is_err());
    }

    #[test]
    fn fold_handles_identities_and_casts() {
        assert_eq!(
            fold(&Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Var("x".into())),
                rhs: Box::new(Expr::IntLit(0)),
            }),
            Expr::Var("x".into())
        );
        assert_eq!(
            fold(&Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::Var("x".into())),
                rhs: Box::new(Expr::IntLit(1)),
            }),
            Expr::Var("x".into())
        );
        assert_eq!(
            fold(&Expr::Cast { ty: CType::Float, expr: Box::new(Expr::IntLit(3)) }),
            Expr::FloatLit(3.0)
        );
        assert_eq!(
            fold(&Expr::Unary { op: UnOp::Not, expr: Box::new(Expr::IntLit(0)) }),
            Expr::IntLit(1)
        );
    }

    #[test]
    fn generated_assembly_assembles() {
        use rvsim_asm::{assemble, AssemblerOptions};
        use rvsim_isa::InstructionSet;
        let sources = [
            ("int main(void) { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }", OptLevel::O0),
            ("int arr[4] = {1,2,3,4}; int main(void) { int s = 0; for (int i = 0; i < 4; i++) s += arr[i]; return s; }", OptLevel::O2),
            ("float v[3]; int main(void) { v[0] = 1.5; v[1] = 2.5; v[2] = v[0] + v[1]; return (int)v[2]; }", OptLevel::O1),
            ("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void) { return fib(10); }", OptLevel::O3),
        ];
        let isa = InstructionSet::rv32imf();
        for (src, opt) in sources {
            let out = compile(src, opt).unwrap();
            let program = assemble(&out.assembly, &isa, &AssemblerOptions::default());
            assert!(
                program.is_ok(),
                "generated assembly must assemble:\n{}\n{:?}",
                out.assembly,
                program.err()
            );
        }
    }
}
