//! Abstract syntax tree for the C subset.

use serde::{Deserialize, Serialize};

/// C types supported by the subset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CType {
    /// 32-bit signed integer.
    Int,
    /// Single-precision float.
    Float,
    /// 8-bit character.
    Char,
    /// No value (function returns only).
    Void,
    /// Pointer to another type (one level is enough for the subset).
    Ptr(Box<CType>),
}

impl CType {
    /// Size of one element of this type in bytes.
    pub fn size(&self) -> usize {
        match self {
            CType::Char => 1,
            CType::Void => 0,
            CType::Int | CType::Float | CType::Ptr(_) => 4,
        }
    }

    /// True for `float`.
    pub fn is_float(&self) -> bool {
        matches!(self, CType::Float)
    }

    /// Element type behind a pointer or array of this type.
    pub fn element(&self) -> CType {
        match self {
            CType::Ptr(inner) => (**inner).clone(),
            other => other.clone(),
        }
    }
}

/// A compile-time constant used in global initializers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Const {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f32),
}

/// A global variable or array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Name (assembly label).
    pub name: String,
    /// Element type.
    pub ty: CType,
    /// `Some(n)` for arrays of `n` elements; `Some(0)` for unsized `extern`
    /// arrays; `None` for scalars.
    pub array_size: Option<usize>,
    /// Initializer values (empty = zero-initialized).
    pub init: Vec<Const>,
    /// Declared `extern` — storage comes from the Memory Settings window.
    pub is_extern: bool,
    /// Source line.
    pub line: usize,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: CType,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (assembly label).
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: usize,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Unit {
    /// Global variables/arrays.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        /// Variable name.
        name: String,
        /// Element type.
        ty: CType,
        /// `Some(n)` for a local array of `n` elements.
        array_size: Option<usize>,
        /// Optional scalar initializer.
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// Expression statement (assignment, call, increment, …).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: usize,
    },
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `for` loop.
    For {
        /// Initialization statement.
        init: Option<Box<Stmt>>,
        /// Condition (None = infinite).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `return` with optional value.
    Return {
        /// Returned expression, if any.
        value: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// `break`.
    Break {
        /// Source line.
        line: usize,
    },
    /// `continue`.
    Continue {
        /// Source line.
        line: usize,
    },
    /// A nested block.
    Block {
        /// Statements in the block.
        body: Vec<Stmt>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// True for comparison operators (result is always `int` 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// True for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f32),
    /// Character literal.
    CharLit(u8),
    /// Variable reference.
    Var(String),
    /// Array / pointer indexing `name[index]`.
    Index {
        /// Array or pointer variable.
        base: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment (optionally compound: `+=`, `-=`, `*=`).
    Assign {
        /// Assignment target (`Var` or `Index`).
        target: Box<Expr>,
        /// `Some(op)` for compound assignment.
        op: Option<BinOp>,
        /// Assigned value.
        value: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Post-increment / post-decrement.
    PostIncDec {
        /// Target (`Var` or `Index`).
        target: Box<Expr>,
        /// True for `++`, false for `--`.
        inc: bool,
    },
    /// Explicit cast `(type) expr`.
    Cast {
        /// Target type.
        ty: CType,
        /// Operand.
        expr: Box<Expr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes_and_helpers() {
        assert_eq!(CType::Int.size(), 4);
        assert_eq!(CType::Char.size(), 1);
        assert_eq!(CType::Float.size(), 4);
        assert_eq!(CType::Void.size(), 0);
        assert_eq!(CType::Ptr(Box::new(CType::Char)).size(), 4);
        assert!(CType::Float.is_float());
        assert!(!CType::Int.is_float());
        assert_eq!(CType::Ptr(Box::new(CType::Float)).element(), CType::Float);
        assert_eq!(CType::Int.element(), CType::Int);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }
}
