//! A fixed-capacity, heap-free vector for hot-path operand lists.
//!
//! The pipeline stores per-instruction operand state (sources, immediates,
//! evaluator bindings) in [`InlineVec`]s so that fetching, renaming and
//! waking instructions never allocates.  Capacities are chosen from the
//! instruction-set shape (at most 3 register sources and 2 immediates per
//! descriptor); predecoding validates user-extended descriptors against the
//! same bounds instead of panicking mid-simulation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `Vec`-like container with inline storage for at most `N` elements.
#[derive(Clone, Copy)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    items: [T; N],
    len: u8,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector.
    pub fn new() -> Self {
        InlineVec { items: [T::default(); N], len: 0 }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total capacity (`N`).
    pub fn capacity(&self) -> usize {
        N
    }

    /// Append `item`; returns `Err(item)` when the vector is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.len() == N {
            return Err(item);
        }
        self.items[self.len()] = item;
        self.len += 1;
        Ok(())
    }

    /// Append `item`, panicking on overflow (use [`Self::try_push`] on
    /// untrusted input).
    pub fn push(&mut self, item: T) {
        if self.try_push(item).is_err() {
            panic!("InlineVec overflow: capacity {N}");
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The stored elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len()]
    }

    /// The stored elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        let len = self.len();
        &mut self.items[..len]
    }

    /// Iterate over the stored elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Iterate mutably over the stored elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.as_mut_slice().iter_mut()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a mut InlineVec<T, N> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Serialize, const N: usize> Serialize for InlineVec<T, N> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Copy + Default + Deserialize, const N: usize> Deserialize for InlineVec<T, N> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let items = value
            .as_array()
            .ok_or_else(|| serde::Error::custom(format!("expected array, got {value:?}")))?;
        let mut v = InlineVec::new();
        for item in items {
            v.try_push(T::from_value(item)?).map_err(|_| {
                serde::Error::custom(format!("array longer than inline capacity {N}"))
            })?;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iterate_and_slice() {
        let mut v: InlineVec<i32, 3> = InlineVec::new();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), 3);
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.as_slice(), &[1, 2]);
        assert_eq!(v.iter().sum::<i32>(), 3);
        for item in v.iter_mut() {
            *item *= 10;
        }
        assert_eq!(v[1], 20, "deref to slice works");
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn overflow_is_detected() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        assert!(v.try_push(1).is_ok());
        assert!(v.try_push(2).is_ok());
        assert_eq!(v.try_push(3), Err(3));
        assert_eq!(v.as_slice(), &[1, 2]);
    }

    #[test]
    fn equality_ignores_spare_capacity() {
        let mut a: InlineVec<i32, 4> = InlineVec::new();
        let mut b: InlineVec<i32, 4> = InlineVec::new();
        a.push(7);
        b.push(7);
        assert_eq!(a, b);
        b.push(8);
        assert_ne!(a, b);
    }

    #[test]
    fn serde_round_trips_as_array() {
        let mut v: InlineVec<i32, 4> = InlineVec::new();
        v.push(3);
        v.push(-1);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, "[3,-1]");
        let back: InlineVec<i32, 4> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        assert!(serde_json::from_str::<InlineVec<i32, 1>>("[1,2]").is_err(), "overflow");
    }
}
