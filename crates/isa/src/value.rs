//! Typed operand values used by the postfix expression interpreter.
//!
//! A [`TypedValue`] is a 64-bit bit pattern plus a [`DataType`] tag.  RV32
//! integer arithmetic is performed on the low 32 bits and the result is
//! sign-extended back into the 64-bit container, matching the paper's
//! "64-bit registers interpreted per instruction" model.

use crate::types::{DataType, Exception};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value flowing through the expression interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypedValue {
    bits: u64,
    data_type: DataType,
}

impl Default for TypedValue {
    fn default() -> Self {
        TypedValue { bits: 0, data_type: DataType::Int }
    }
}

impl TypedValue {
    /// Construct from a raw bit pattern and a type tag.
    pub fn from_bits(bits: u64, data_type: DataType) -> Self {
        TypedValue { bits, data_type }
    }

    /// 32-bit signed integer value (stored sign-extended).
    pub fn int(v: i32) -> Self {
        TypedValue { bits: v as i64 as u64, data_type: DataType::Int }
    }

    /// 32-bit unsigned integer value.
    pub fn uint(v: u32) -> Self {
        TypedValue { bits: v as u64, data_type: DataType::UInt }
    }

    /// 64-bit signed integer value.
    pub fn long(v: i64) -> Self {
        TypedValue { bits: v as u64, data_type: DataType::Long }
    }

    /// Single-precision float value.
    pub fn float(v: f32) -> Self {
        TypedValue { bits: v.to_bits() as u64, data_type: DataType::Float }
    }

    /// Double-precision float value.
    pub fn double(v: f64) -> Self {
        TypedValue { bits: v.to_bits(), data_type: DataType::Double }
    }

    /// Boolean value.
    pub fn bool(v: bool) -> Self {
        TypedValue { bits: v as u64, data_type: DataType::Bool }
    }

    /// Raw bit pattern.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Type tag.
    pub fn data_type(self) -> DataType {
        self.data_type
    }

    /// Retag the value without changing the bits.
    pub fn with_type(self, data_type: DataType) -> Self {
        TypedValue { bits: self.bits, data_type }
    }

    /// Signed integer view.  32-bit types are interpreted from the low 32 bits.
    pub fn as_i64(self) -> i64 {
        match self.data_type {
            DataType::Int => self.bits as u32 as i32 as i64,
            DataType::UInt => self.bits as u32 as i64,
            DataType::Char | DataType::Bool => (self.bits & 0xff) as i64,
            DataType::Float => f32::from_bits(self.bits as u32) as i64,
            DataType::Double => f64::from_bits(self.bits) as i64,
            DataType::Long | DataType::ULong => self.bits as i64,
        }
    }

    /// Unsigned 32-bit view of the low word.
    pub fn as_u32(self) -> u32 {
        self.bits as u32
    }

    /// Unsigned 64-bit view.
    pub fn as_u64(self) -> u64 {
        match self.data_type {
            DataType::Int => self.bits as u32 as i32 as i64 as u64,
            _ => self.bits,
        }
    }

    /// Single-precision view (converts from the stored type).
    pub fn as_f32(self) -> f32 {
        match self.data_type {
            DataType::Float => f32::from_bits(self.bits as u32),
            DataType::Double => f64::from_bits(self.bits) as f32,
            _ => self.as_i64() as f32,
        }
    }

    /// Double-precision view (converts from the stored type).
    pub fn as_f64(self) -> f64 {
        match self.data_type {
            DataType::Float => f32::from_bits(self.bits as u32) as f64,
            DataType::Double => f64::from_bits(self.bits),
            _ => self.as_i64() as f64,
        }
    }

    /// Truthiness used by branch-condition expressions.
    pub fn is_true(self) -> bool {
        if self.data_type.is_float() {
            self.as_f64() != 0.0
        } else {
            self.as_i64() != 0
        }
    }

    /// Human-readable rendering respecting the type tag.
    pub fn display(self) -> String {
        crate::register::RegisterValue { bits: self.bits, data_type: self.data_type }
            .display_value()
    }
}

impl fmt::Display for TypedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

/// Helpers building an RV32-style 32-bit integer result (sign extended).
fn int_result(v: i32) -> TypedValue {
    TypedValue::int(v)
}

/// Binary operations understood by the expression interpreter.
///
/// All RV32 integer ops operate on the 32-bit low word; float ops on f32;
/// the `d`-prefixed variants on f64.
pub fn binary_op(op: &str, a: TypedValue, b: TypedValue) -> Result<TypedValue, Exception> {
    let ai = a.as_i64() as i32;
    let bi = b.as_i64() as i32;
    let au = a.as_u32();
    let bu = b.as_u32();
    let r = match op {
        // -------- integer arithmetic (RV32, wrapping) --------
        "+" => int_result(ai.wrapping_add(bi)),
        "-" => int_result(ai.wrapping_sub(bi)),
        "*" => int_result(ai.wrapping_mul(bi)),
        "/" => {
            if bi == 0 {
                return Err(Exception::DivisionByZero);
            }
            if ai == i32::MIN && bi == -1 {
                int_result(i32::MIN)
            } else {
                int_result(ai.wrapping_div(bi))
            }
        }
        "%" => {
            if bi == 0 {
                return Err(Exception::DivisionByZero);
            }
            if ai == i32::MIN && bi == -1 {
                int_result(0)
            } else {
                int_result(ai.wrapping_rem(bi))
            }
        }
        "u/" => {
            if bu == 0 {
                return Err(Exception::DivisionByZero);
            }
            TypedValue::uint(au / bu).with_type(DataType::Int)
        }
        "u%" => {
            if bu == 0 {
                return Err(Exception::DivisionByZero);
            }
            TypedValue::uint(au % bu).with_type(DataType::Int)
        }
        "mulh" => int_result((((ai as i64) * (bi as i64)) >> 32) as i32),
        "mulhu" => int_result((((au as u64) * (bu as u64)) >> 32) as i32),
        "mulhsu" => int_result((((ai as i64) * (bu as i64)) >> 32) as i32),
        // -------- bitwise --------
        "&" => int_result(ai & bi),
        "|" => int_result(ai | bi),
        "^" => int_result(ai ^ bi),
        "<<" => int_result(((au) << (bu & 31)) as i32),
        ">>" => int_result(ai >> (bu & 31)),
        ">>>" => int_result((au >> (bu & 31)) as i32),
        // -------- comparisons (produce 0/1 int) --------
        "<" => int_result((ai < bi) as i32),
        "u<" => int_result((au < bu) as i32),
        ">" => int_result((ai > bi) as i32),
        "u>" => int_result((au > bu) as i32),
        "<=" => int_result((ai <= bi) as i32),
        ">=" => int_result((ai >= bi) as i32),
        "u>=" => int_result((au >= bu) as i32),
        "u<=" => int_result((au <= bu) as i32),
        "==" => int_result((ai == bi) as i32),
        "!=" => int_result((ai != bi) as i32),
        // -------- single-precision float --------
        "f+" => TypedValue::float(a.as_f32() + b.as_f32()),
        "f-" => TypedValue::float(a.as_f32() - b.as_f32()),
        "f*" => TypedValue::float(a.as_f32() * b.as_f32()),
        "f/" => TypedValue::float(a.as_f32() / b.as_f32()),
        "fmin" => TypedValue::float(a.as_f32().min(b.as_f32())),
        "fmax" => TypedValue::float(a.as_f32().max(b.as_f32())),
        "f==" => int_result((a.as_f32() == b.as_f32()) as i32),
        "f<" => int_result((a.as_f32() < b.as_f32()) as i32),
        "f<=" => int_result((a.as_f32() <= b.as_f32()) as i32),
        "fsgnj" => TypedValue::float(a.as_f32().copysign(b.as_f32())),
        "fsgnjn" => TypedValue::float(a.as_f32().copysign(-b.as_f32())),
        "fsgnjx" => {
            let sign = if (a.as_f32().is_sign_negative()) ^ (b.as_f32().is_sign_negative()) {
                -1.0f32
            } else {
                1.0f32
            };
            TypedValue::float(a.as_f32().copysign(sign))
        }
        // -------- double precision --------
        "d+" => TypedValue::double(a.as_f64() + b.as_f64()),
        "d-" => TypedValue::double(a.as_f64() - b.as_f64()),
        "d*" => TypedValue::double(a.as_f64() * b.as_f64()),
        "d/" => TypedValue::double(a.as_f64() / b.as_f64()),
        "dmin" => TypedValue::double(a.as_f64().min(b.as_f64())),
        "dmax" => TypedValue::double(a.as_f64().max(b.as_f64())),
        "d==" => int_result((a.as_f64() == b.as_f64()) as i32),
        "d<" => int_result((a.as_f64() < b.as_f64()) as i32),
        "d<=" => int_result((a.as_f64() <= b.as_f64()) as i32),
        _ => {
            return Err(Exception::Interpreter(format!("unknown binary operator `{op}`")));
        }
    };
    Ok(r)
}

/// Unary operations understood by the expression interpreter.
pub fn unary_op(op: &str, a: TypedValue) -> Result<TypedValue, Exception> {
    let r = match op {
        "!" => int_result((!a.is_true()) as i32),
        "neg" => int_result((a.as_i64() as i32).wrapping_neg()),
        "not" => int_result(!(a.as_i64() as i32)),
        "sext8" => int_result(a.as_u32() as u8 as i8 as i32),
        "sext16" => int_result(a.as_u32() as u16 as i16 as i32),
        "zext8" => int_result((a.as_u32() & 0xff) as i32),
        "zext16" => int_result((a.as_u32() & 0xffff) as i32),
        "fsqrt" => TypedValue::float(a.as_f32().sqrt()),
        "dsqrt" => TypedValue::double(a.as_f64().sqrt()),
        "fneg" => TypedValue::float(-a.as_f32()),
        "fabs" => TypedValue::float(a.as_f32().abs()),
        // conversions
        "i2f" => TypedValue::float(a.as_i64() as i32 as f32),
        "u2f" => TypedValue::float(a.as_u32() as f32),
        "f2i" => int_result(clamp_f2i(a.as_f32() as f64)),
        "f2u" => TypedValue::uint(clamp_f2u(a.as_f32() as f64)).with_type(DataType::Int),
        "i2d" => TypedValue::double(a.as_i64() as i32 as f64),
        "u2d" => TypedValue::double(a.as_u32() as f64),
        "d2i" => int_result(clamp_f2i(a.as_f64())),
        "d2u" => TypedValue::uint(clamp_f2u(a.as_f64())).with_type(DataType::Int),
        "f2d" => TypedValue::double(a.as_f32() as f64),
        "d2f" => TypedValue::float(a.as_f64() as f32),
        "bits2f" => TypedValue::from_bits(a.as_u32() as u64, DataType::Float),
        "f2bits" => int_result(a.bits() as u32 as i32),
        _ => {
            return Err(Exception::Interpreter(format!("unknown unary operator `{op}`")));
        }
    };
    Ok(r)
}

fn clamp_f2i(v: f64) -> i32 {
    // NaN converts to i32::MAX, matching RISC-V fcvt.w.s semantics.
    if v.is_nan() || v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}

fn clamp_f2u(v: f64) -> u32 {
    if v.is_nan() || v <= 0.0 {
        if v.is_nan() {
            u32::MAX
        } else {
            0
        }
    } else if v >= u32::MAX as f64 {
        u32::MAX
    } else {
        v as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(op: &str, a: TypedValue, b: TypedValue) -> TypedValue {
        binary_op(op, a, b).unwrap()
    }

    #[test]
    fn integer_arithmetic_wraps_like_rv32() {
        assert_eq!(
            bi("+", TypedValue::int(i32::MAX), TypedValue::int(1)).as_i64(),
            i32::MIN as i64
        );
        assert_eq!(
            bi("-", TypedValue::int(i32::MIN), TypedValue::int(1)).as_i64(),
            i32::MAX as i64
        );
        assert_eq!(bi("*", TypedValue::int(7), TypedValue::int(6)).as_i64(), 42);
    }

    #[test]
    fn division_by_zero_raises() {
        assert_eq!(
            binary_op("/", TypedValue::int(1), TypedValue::int(0)),
            Err(Exception::DivisionByZero)
        );
        assert_eq!(
            binary_op("u%", TypedValue::int(1), TypedValue::int(0)),
            Err(Exception::DivisionByZero)
        );
    }

    #[test]
    fn division_overflow_matches_riscv_spec() {
        // RISC-V defines i32::MIN / -1 = i32::MIN and rem = 0 (no trap).
        assert_eq!(
            bi("/", TypedValue::int(i32::MIN), TypedValue::int(-1)).as_i64(),
            i32::MIN as i64
        );
        assert_eq!(bi("%", TypedValue::int(i32::MIN), TypedValue::int(-1)).as_i64(), 0);
    }

    #[test]
    fn unsigned_ops_use_unsigned_views() {
        assert_eq!(bi("u<", TypedValue::int(-1), TypedValue::int(1)).as_i64(), 0);
        assert_eq!(bi("<", TypedValue::int(-1), TypedValue::int(1)).as_i64(), 1);
        assert_eq!(bi("u/", TypedValue::int(-2), TypedValue::int(2)).as_u32(), 0x7fff_ffff);
    }

    #[test]
    fn shifts_mask_amount_to_five_bits() {
        assert_eq!(bi("<<", TypedValue::int(1), TypedValue::int(33)).as_i64(), 2);
        assert_eq!(bi(">>", TypedValue::int(-8), TypedValue::int(1)).as_i64(), -4);
        assert_eq!(bi(">>>", TypedValue::int(-8), TypedValue::int(1)).as_u32(), 0x7fff_fffc);
    }

    #[test]
    fn mulh_variants() {
        let a = TypedValue::int(-1);
        let b = TypedValue::int(-1);
        assert_eq!(bi("mulh", a, b).as_i64(), 0);
        assert_eq!(bi("mulhu", a, b).as_u32(), 0xffff_fffe);
        assert_eq!(bi("mulhsu", a, b).as_i64(), -1);
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(bi("f+", TypedValue::float(1.5), TypedValue::float(2.25)).as_f32(), 3.75);
        assert_eq!(bi("fmax", TypedValue::float(-1.0), TypedValue::float(2.0)).as_f32(), 2.0);
        assert_eq!(bi("f<", TypedValue::float(1.0), TypedValue::float(2.0)).as_i64(), 1);
        assert_eq!(unary_op("fsqrt", TypedValue::float(9.0)).unwrap().as_f32(), 3.0);
    }

    #[test]
    fn sign_injection() {
        assert_eq!(bi("fsgnj", TypedValue::float(1.5), TypedValue::float(-0.0)).as_f32(), -1.5);
        assert_eq!(bi("fsgnjn", TypedValue::float(1.5), TypedValue::float(-0.0)).as_f32(), 1.5);
        assert_eq!(bi("fsgnjx", TypedValue::float(-1.5), TypedValue::float(-2.0)).as_f32(), 1.5);
    }

    #[test]
    fn conversions() {
        assert_eq!(unary_op("i2f", TypedValue::int(-3)).unwrap().as_f32(), -3.0);
        assert_eq!(unary_op("f2i", TypedValue::float(-3.7)).unwrap().as_i64(), -3);
        assert_eq!(unary_op("f2u", TypedValue::float(-3.7)).unwrap().as_u32(), 0);
        assert_eq!(unary_op("f2i", TypedValue::float(f32::NAN)).unwrap().as_i64(), i32::MAX as i64);
        assert_eq!(unary_op("sext8", TypedValue::int(0xff)).unwrap().as_i64(), -1);
        assert_eq!(unary_op("zext8", TypedValue::int(0xff)).unwrap().as_i64(), 255);
        assert_eq!(unary_op("sext16", TypedValue::int(0x8000)).unwrap().as_i64(), -32768);
    }

    #[test]
    fn bit_moves_between_files() {
        let f = unary_op("bits2f", TypedValue::int(2.5f32.to_bits() as i32)).unwrap();
        assert_eq!(f.as_f32(), 2.5);
        let i = unary_op("f2bits", TypedValue::float(2.5)).unwrap();
        assert_eq!(i.as_u32(), 2.5f32.to_bits());
    }

    #[test]
    fn unknown_operator_is_interpreter_error() {
        assert!(matches!(
            binary_op("??", TypedValue::int(1), TypedValue::int(1)),
            Err(Exception::Interpreter(_))
        ));
        assert!(matches!(unary_op("??", TypedValue::int(1)), Err(Exception::Interpreter(_))));
    }

    #[test]
    fn truthiness() {
        assert!(TypedValue::int(5).is_true());
        assert!(!TypedValue::int(0).is_true());
        assert!(TypedValue::float(0.5).is_true());
        assert!(!TypedValue::float(0.0).is_true());
    }

    #[test]
    fn display_uses_type_tag() {
        assert_eq!(TypedValue::int(-7).to_string(), "-7");
        assert_eq!(TypedValue::float(1.25).to_string(), "1.25");
        assert_eq!(TypedValue::bool(true).to_string(), "true");
    }
}
