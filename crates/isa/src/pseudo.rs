//! Pseudo-instruction expansion.
//!
//! The assembler calls [`expand`] with a mnemonic and its textual operands;
//! when the mnemonic is a pseudo-instruction the function returns the list of
//! real instructions it expands to.  Expansion is purely syntactic: label
//! operands stay symbolic (possibly wrapped in `%hi(...)` / `%lo(...)`) and
//! are resolved by the assembler's second pass.

/// One expanded instruction: mnemonic plus textual operands.
pub type Expanded = (String, Vec<String>);

fn ins(name: &str, ops: &[&str]) -> Expanded {
    (name.to_string(), ops.iter().map(|s| s.to_string()).collect())
}

/// True when `mnemonic` is one of the recognized pseudo-instructions.
pub fn is_pseudo(mnemonic: &str) -> bool {
    const NAMES: &[&str] = &[
        "nop", "li", "la", "lla", "mv", "not", "neg", "seqz", "snez", "sltz", "sgtz", "beqz",
        "bnez", "blez", "bgez", "bltz", "bgtz", "bgt", "ble", "bgtu", "bleu", "j", "jr", "ret",
        "call", "tail", "fmv.s", "fabs.s", "fneg.s",
    ];
    NAMES.contains(&mnemonic) || (mnemonic == "jal" || mnemonic == "jalr")
    // `jal`/`jalr` have short pseudo forms with fewer operands; expansion
    // decides based on the operand count.
}

/// Expand a pseudo-instruction.  Returns `None` when `mnemonic` (with this
/// operand count) is not a pseudo-instruction and should be assembled as-is.
pub fn expand(mnemonic: &str, ops: &[String]) -> Option<Vec<Expanded>> {
    let o = |i: usize| ops.get(i).map(String::as_str).unwrap_or("");
    let some = |v: Vec<Expanded>| Some(v);

    match (mnemonic, ops.len()) {
        ("nop", 0) => some(vec![ins("addi", &["x0", "x0", "0"])]),

        ("li", 2) => {
            // Small constants fit a single addi; anything else (large constant
            // or symbolic expression) becomes lui + addi via %hi/%lo.
            if let Some(v) = parse_int(o(1)) {
                if (-2048..=2047).contains(&v) {
                    return some(vec![(
                        "addi".to_string(),
                        vec![ops[0].clone(), "x0".to_string(), v.to_string()],
                    )]);
                }
            }
            some(vec![
                ("lui".to_string(), vec![ops[0].clone(), format!("%hi({})", o(1))]),
                (
                    "addi".to_string(),
                    vec![ops[0].clone(), ops[0].clone(), format!("%lo({})", o(1))],
                ),
            ])
        }

        ("la" | "lla", 2) => some(vec![
            ("lui".to_string(), vec![ops[0].clone(), format!("%hi({})", o(1))]),
            ("addi".to_string(), vec![ops[0].clone(), ops[0].clone(), format!("%lo({})", o(1))]),
        ]),

        ("mv", 2) => {
            some(vec![("addi".to_string(), vec![ops[0].clone(), ops[1].clone(), "0".to_string()])])
        }
        ("not", 2) => {
            some(vec![("xori".to_string(), vec![ops[0].clone(), ops[1].clone(), "-1".to_string()])])
        }
        ("neg", 2) => {
            some(vec![("sub".to_string(), vec![ops[0].clone(), "x0".to_string(), ops[1].clone()])])
        }
        ("seqz", 2) => {
            some(vec![("sltiu".to_string(), vec![ops[0].clone(), ops[1].clone(), "1".to_string()])])
        }
        ("snez", 2) => {
            some(vec![("sltu".to_string(), vec![ops[0].clone(), "x0".to_string(), ops[1].clone()])])
        }
        ("sltz", 2) => {
            some(vec![("slt".to_string(), vec![ops[0].clone(), ops[1].clone(), "x0".to_string()])])
        }
        ("sgtz", 2) => {
            some(vec![("slt".to_string(), vec![ops[0].clone(), "x0".to_string(), ops[1].clone()])])
        }

        ("beqz", 2) => {
            some(vec![("beq".to_string(), vec![ops[0].clone(), "x0".to_string(), ops[1].clone()])])
        }
        ("bnez", 2) => {
            some(vec![("bne".to_string(), vec![ops[0].clone(), "x0".to_string(), ops[1].clone()])])
        }
        ("blez", 2) => {
            some(vec![("bge".to_string(), vec!["x0".to_string(), ops[0].clone(), ops[1].clone()])])
        }
        ("bgez", 2) => {
            some(vec![("bge".to_string(), vec![ops[0].clone(), "x0".to_string(), ops[1].clone()])])
        }
        ("bltz", 2) => {
            some(vec![("blt".to_string(), vec![ops[0].clone(), "x0".to_string(), ops[1].clone()])])
        }
        ("bgtz", 2) => {
            some(vec![("blt".to_string(), vec!["x0".to_string(), ops[0].clone(), ops[1].clone()])])
        }
        ("bgt", 3) => {
            some(vec![("blt".to_string(), vec![ops[1].clone(), ops[0].clone(), ops[2].clone()])])
        }
        ("ble", 3) => {
            some(vec![("bge".to_string(), vec![ops[1].clone(), ops[0].clone(), ops[2].clone()])])
        }
        ("bgtu", 3) => {
            some(vec![("bltu".to_string(), vec![ops[1].clone(), ops[0].clone(), ops[2].clone()])])
        }
        ("bleu", 3) => {
            some(vec![("bgeu".to_string(), vec![ops[1].clone(), ops[0].clone(), ops[2].clone()])])
        }

        ("j", 1) => some(vec![("jal".to_string(), vec!["x0".to_string(), ops[0].clone()])]),
        ("jal", 1) => some(vec![("jal".to_string(), vec!["ra".to_string(), ops[0].clone()])]),
        ("jr", 1) => some(vec![(
            "jalr".to_string(),
            vec!["x0".to_string(), ops[0].clone(), "0".to_string()],
        )]),
        ("jalr", 1) => some(vec![(
            "jalr".to_string(),
            vec!["ra".to_string(), ops[0].clone(), "0".to_string()],
        )]),
        ("ret", 0) => some(vec![ins("jalr", &["x0", "ra", "0"])]),
        ("call", 1) => some(vec![("jal".to_string(), vec!["ra".to_string(), ops[0].clone()])]),
        ("tail", 1) => some(vec![("jal".to_string(), vec!["x0".to_string(), ops[0].clone()])]),

        ("fmv.s", 2) => some(vec![(
            "fsgnj.s".to_string(),
            vec![ops[0].clone(), ops[1].clone(), ops[1].clone()],
        )]),
        ("fabs.s", 2) => some(vec![(
            "fsgnjx.s".to_string(),
            vec![ops[0].clone(), ops[1].clone(), ops[1].clone()],
        )]),
        ("fneg.s", 2) => some(vec![(
            "fsgnjn.s".to_string(),
            vec![ops[0].clone(), ops[1].clone(), ops[1].clone()],
        )]),

        _ => None,
    }
}

/// Parse a decimal or hexadecimal integer literal (with optional sign).
pub fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = if let Some(rest) = s.strip_prefix('-') {
        (true, rest)
    } else if let Some(rest) = s.strip_prefix('+') {
        (false, rest)
    } else {
        (false, s)
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn nop_and_mv() {
        assert_eq!(expand("nop", &[]).unwrap(), vec![ins("addi", &["x0", "x0", "0"])]);
        assert_eq!(
            expand("mv", &ops(&["a0", "a1"])).unwrap(),
            vec![ins("addi", &["a0", "a1", "0"])]
        );
    }

    #[test]
    fn li_small_immediate_is_single_addi() {
        let e = expand("li", &ops(&["t0", "42"])).unwrap();
        assert_eq!(e, vec![ins("addi", &["t0", "x0", "42"])]);
        let e = expand("li", &ops(&["t0", "-2048"])).unwrap();
        assert_eq!(e, vec![ins("addi", &["t0", "x0", "-2048"])]);
    }

    #[test]
    fn li_large_immediate_uses_hi_lo() {
        let e = expand("li", &ops(&["t0", "0x12345678"])).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].0, "lui");
        assert_eq!(e[0].1[1], "%hi(0x12345678)");
        assert_eq!(e[1].0, "addi");
        assert_eq!(e[1].1[2], "%lo(0x12345678)");
    }

    #[test]
    fn la_uses_hi_lo_of_symbol() {
        let e = expand("la", &ops(&["a0", "arr"])).unwrap();
        assert_eq!(e[0].1[1], "%hi(arr)");
        assert_eq!(e[1].1[2], "%lo(arr)");
        assert_eq!(expand("lla", &ops(&["a0", "arr"])).unwrap(), e);
    }

    #[test]
    fn branch_zero_forms() {
        assert_eq!(
            expand("beqz", &ops(&["a0", "done"])).unwrap(),
            vec![ins("beq", &["a0", "x0", "done"])]
        );
        assert_eq!(
            expand("bgtz", &ops(&["a0", "loop"])).unwrap(),
            vec![ins("blt", &["x0", "a0", "loop"])]
        );
        assert_eq!(
            expand("bgt", &ops(&["a0", "a1", "l"])).unwrap(),
            vec![ins("blt", &["a1", "a0", "l"])]
        );
        assert_eq!(
            expand("bleu", &ops(&["a0", "a1", "l"])).unwrap(),
            vec![ins("bgeu", &["a1", "a0", "l"])]
        );
    }

    #[test]
    fn jumps_and_calls() {
        assert_eq!(expand("j", &ops(&["loop"])).unwrap(), vec![ins("jal", &["x0", "loop"])]);
        assert_eq!(expand("jal", &ops(&["f"])).unwrap(), vec![ins("jal", &["ra", "f"])]);
        assert_eq!(expand("ret", &[]).unwrap(), vec![ins("jalr", &["x0", "ra", "0"])]);
        assert_eq!(expand("call", &ops(&["f"])).unwrap(), vec![ins("jal", &["ra", "f"])]);
        assert_eq!(expand("jr", &ops(&["t0"])).unwrap(), vec![ins("jalr", &["x0", "t0", "0"])]);
        // Two-operand `jal rd, label` is NOT a pseudo.
        assert_eq!(expand("jal", &ops(&["ra", "f"])), None);
    }

    #[test]
    fn float_register_moves() {
        assert_eq!(
            expand("fmv.s", &ops(&["fa0", "fa1"])).unwrap(),
            vec![ins("fsgnj.s", &["fa0", "fa1", "fa1"])]
        );
        assert_eq!(
            expand("fneg.s", &ops(&["fa0", "fa1"])).unwrap(),
            vec![ins("fsgnjn.s", &["fa0", "fa1", "fa1"])]
        );
        assert_eq!(
            expand("fabs.s", &ops(&["fa0", "fa1"])).unwrap(),
            vec![ins("fsgnjx.s", &["fa0", "fa1", "fa1"])]
        );
    }

    #[test]
    fn non_pseudo_returns_none() {
        assert_eq!(expand("add", &ops(&["a0", "a1", "a2"])), None);
        assert_eq!(expand("lw", &ops(&["a0", "0(sp)"])), None);
    }

    #[test]
    fn parse_int_forms() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("-7"), Some(-7));
        assert_eq!(parse_int("0x10"), Some(16));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("+3"), Some(3));
        assert!(parse_int("arr").is_none());
        assert!(parse_int("").is_none());
    }

    #[test]
    fn is_pseudo_matches_expand() {
        for name in ["nop", "li", "la", "mv", "ret", "call", "beqz", "fneg.s"] {
            assert!(is_pseudo(name), "{name}");
        }
        assert!(!is_pseudo("add"));
        assert!(!is_pseudo("lw"));
    }
}
