//! Shared enumerations: data types, instruction categories, argument kinds and
//! runtime exceptions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Data type carried by a register value or instruction operand.
///
/// Registers are physically 64-bit (paper §III-B) but every value carries a
/// type tag so the GUI/CLI can display the *intended* value (`char`, `float`,
/// …) instead of a raw bit pattern, and so the expression interpreter knows
/// which arithmetic to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DataType {
    /// 32-bit signed integer (`kInt` in the paper's JSON).
    #[default]
    #[serde(rename = "kInt")]
    Int,
    /// 32-bit unsigned integer.
    #[serde(rename = "kUInt")]
    UInt,
    /// 64-bit signed integer.
    #[serde(rename = "kLong")]
    Long,
    /// 64-bit unsigned integer.
    #[serde(rename = "kULong")]
    ULong,
    /// IEEE-754 single precision.
    #[serde(rename = "kFloat")]
    Float,
    /// IEEE-754 double precision.
    #[serde(rename = "kDouble")]
    Double,
    /// 8-bit character.
    #[serde(rename = "kChar")]
    Char,
    /// Boolean (0/1).
    #[serde(rename = "kBool")]
    Bool,
}

impl DataType {
    /// Size of the type in bytes when stored in memory.
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::Char | DataType::Bool => 1,
            DataType::Int | DataType::UInt | DataType::Float => 4,
            DataType::Long | DataType::ULong | DataType::Double => 8,
        }
    }

    /// True for `Float` / `Double`.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::Float | DataType::Double)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::UInt => "uint",
            DataType::Long => "long",
            DataType::ULong => "ulong",
            DataType::Float => "float",
            DataType::Double => "double",
            DataType::Char => "char",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// Coarse instruction category, mirroring the `instructionType` field of the
/// paper's instruction-definition JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstructionType {
    /// Integer or floating-point arithmetic / logic (`kArithmetic`).
    #[serde(rename = "kArithmetic")]
    Arithmetic,
    /// Memory access (`kLoadstore`).
    #[serde(rename = "kLoadstore")]
    LoadStore,
    /// Conditional branches and unconditional jumps (`kJumpbranch`).
    #[serde(rename = "kJumpbranch")]
    JumpBranch,
}

/// Which issue window / functional unit class executes the instruction.
///
/// The paper's processor view has issue windows for the FX and FP ALUs, the
/// branch unit and the load/store unit, plus a memory access unit behind the
/// L/S buffers (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionalClass {
    /// Integer ALU (arithmetic, logic, shifts, multiplication, division).
    Fx,
    /// Floating-point ALU.
    Fp,
    /// Load instructions (go through the load buffer).
    Load,
    /// Store instructions (go through the store buffer).
    Store,
    /// Conditional branches and jumps.
    Branch,
}

impl FunctionalClass {
    /// Human-readable short name used in statistics tables.
    pub fn short_name(self) -> &'static str {
        match self {
            FunctionalClass::Fx => "FX",
            FunctionalClass::Fp => "FP",
            FunctionalClass::Load => "LOAD",
            FunctionalClass::Store => "STORE",
            FunctionalClass::Branch => "BRANCH",
        }
    }
}

impl fmt::Display for FunctionalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Kind of an instruction argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArgKind {
    /// Integer register (`x0`–`x31`).
    IntReg,
    /// Floating-point register (`f0`–`f31`).
    FpReg,
    /// Immediate constant.
    Imm,
    /// Label reference (resolved by the assembler to an address / offset).
    Label,
}

/// Runtime exceptions raised during instruction interpretation.  Exceptions
/// are recorded on the instruction and acted upon when it commits
/// (paper §III-B).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exception {
    /// Integer division by zero.
    DivisionByZero,
    /// Memory access outside the allocated memory image.
    InvalidAddress {
        /// The offending byte address.
        address: u64,
    },
    /// Misaligned memory access for the given access size.
    MisalignedAccess {
        /// The offending byte address.
        address: u64,
        /// Access size in bytes.
        size: usize,
    },
    /// Jump/branch outside the program.
    InvalidJumpTarget {
        /// Target program counter.
        target: u64,
    },
    /// Expression-interpreter failure (malformed semantics string).
    Interpreter(String),
    /// Call-stack overflow (SP ran below the reserved stack area).
    StackOverflow,
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exception::DivisionByZero => write!(f, "integer division by zero"),
            Exception::InvalidAddress { address } => {
                write!(f, "invalid memory access at 0x{address:x}")
            }
            Exception::MisalignedAccess { address, size } => {
                write!(f, "misaligned {size}-byte access at 0x{address:x}")
            }
            Exception::InvalidJumpTarget { target } => {
                write!(f, "jump outside program to 0x{target:x}")
            }
            Exception::Interpreter(msg) => write!(f, "interpreter error: {msg}"),
            Exception::StackOverflow => write!(f, "call stack overflow"),
        }
    }
}

impl std::error::Error for Exception {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_sizes() {
        assert_eq!(DataType::Char.size_bytes(), 1);
        assert_eq!(DataType::Bool.size_bytes(), 1);
        assert_eq!(DataType::Int.size_bytes(), 4);
        assert_eq!(DataType::UInt.size_bytes(), 4);
        assert_eq!(DataType::Float.size_bytes(), 4);
        assert_eq!(DataType::Long.size_bytes(), 8);
        assert_eq!(DataType::Double.size_bytes(), 8);
    }

    #[test]
    fn data_type_float_predicate() {
        assert!(DataType::Float.is_float());
        assert!(DataType::Double.is_float());
        assert!(!DataType::Int.is_float());
        assert!(!DataType::Char.is_float());
    }

    #[test]
    fn serde_round_trip_uses_paper_names() {
        let json = serde_json::to_string(&DataType::Int).unwrap();
        assert_eq!(json, "\"kInt\"");
        let back: DataType = serde_json::from_str("\"kFloat\"").unwrap();
        assert_eq!(back, DataType::Float);

        let json = serde_json::to_string(&InstructionType::Arithmetic).unwrap();
        assert_eq!(json, "\"kArithmetic\"");
    }

    #[test]
    fn functional_class_names() {
        assert_eq!(FunctionalClass::Fx.short_name(), "FX");
        assert_eq!(FunctionalClass::Branch.to_string(), "BRANCH");
    }

    #[test]
    fn exception_display() {
        let e = Exception::InvalidAddress { address: 0x40 };
        assert!(e.to_string().contains("0x40"));
        let e = Exception::MisalignedAccess { address: 3, size: 4 };
        assert!(e.to_string().contains("4-byte"));
    }
}
