//! Instruction descriptors and the configurable instruction set.
//!
//! As in the paper (Listing 1), every instruction is described by data: its
//! name, category, argument list and a postfix semantics expression.  The set
//! can be serialized to / loaded from JSON so users can extend it without
//! recompiling.
//!
//! Compared to the paper's single `interpretableAs` string we split the
//! semantics of memory and control-flow instructions into dedicated
//! expressions (`address`, `condition`, `target`).  The paper's simulator does
//! the same split implicitly inside its load/store and branch units; making it
//! explicit keeps each functional unit's job a single expression evaluation.

use crate::types::{ArgKind, DataType, FunctionalClass, InstructionType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of a descriptor within one [`InstructionSet`].
///
/// Ids are assigned in insertion order and are stable across
/// [`InstructionSet::add`] replacements, so hot paths (predecoded programs,
/// dynamic-mix counters, ISS dispatch) can index plain arrays by id and
/// convert back to mnemonics only at serialization boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DescriptorId(pub u16);

impl DescriptorId {
    /// The id as a plain array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DescriptorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One instruction argument (paper Listing 1: `{"name": "rd", "type": "kInt",
/// "writeBack": true}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArgumentDescriptor {
    /// Argument name referenced from the semantics expression (`rd`, `rs1`, `imm`).
    pub name: String,
    /// Syntactic kind (integer register, fp register, immediate, label).
    pub kind: ArgKind,
    /// Data type of the value carried by this argument.
    #[serde(rename = "type")]
    pub data_type: DataType,
    /// True when the instruction writes this argument back to the register file.
    #[serde(default, rename = "writeBack")]
    pub write_back: bool,
}

impl ArgumentDescriptor {
    /// Integer-register source argument.
    pub fn int_reg(name: &str) -> Self {
        ArgumentDescriptor {
            name: name.to_string(),
            kind: ArgKind::IntReg,
            data_type: DataType::Int,
            write_back: false,
        }
    }

    /// Integer-register destination argument.
    pub fn int_reg_wb(name: &str) -> Self {
        ArgumentDescriptor { write_back: true, ..Self::int_reg(name) }
    }

    /// Floating-point source argument.
    pub fn fp_reg(name: &str) -> Self {
        ArgumentDescriptor {
            name: name.to_string(),
            kind: ArgKind::FpReg,
            data_type: DataType::Float,
            write_back: false,
        }
    }

    /// Floating-point destination argument.
    pub fn fp_reg_wb(name: &str) -> Self {
        ArgumentDescriptor { write_back: true, ..Self::fp_reg(name) }
    }

    /// Immediate argument.
    pub fn imm(name: &str) -> Self {
        ArgumentDescriptor {
            name: name.to_string(),
            kind: ArgKind::Imm,
            data_type: DataType::Int,
            write_back: false,
        }
    }

    /// Label argument (branch/jump target or memory symbol).
    pub fn label(name: &str) -> Self {
        ArgumentDescriptor {
            name: name.to_string(),
            kind: ArgKind::Label,
            data_type: DataType::Int,
            write_back: false,
        }
    }
}

/// Description of a memory access performed by a load or store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAccessDescriptor {
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: usize,
    /// Sign-extend the loaded value (only meaningful for loads narrower than 4 B).
    pub sign_extend: bool,
    /// True for stores, false for loads.
    pub is_store: bool,
    /// Data type written to the destination register (loads) or read from the
    /// source register (stores); drives display metadata.
    pub data_type: DataType,
}

/// Full description of one machine instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionDescriptor {
    /// Mnemonic (`add`, `lw`, `beq`, `fmadd.s`, …).
    pub name: String,
    /// Coarse category (paper `instructionType`).
    #[serde(rename = "instructionType")]
    pub instruction_type: InstructionType,
    /// Which functional-unit class executes the instruction.
    pub functional_class: FunctionalClass,
    /// Argument list in assembly order.
    pub arguments: Vec<ArgumentDescriptor>,
    /// Main postfix semantics: arithmetic result and register write-back
    /// (paper `interpretableAs`).  Empty for instructions whose entire effect
    /// is a memory access or a branch without link.
    #[serde(rename = "interpretableAs", default)]
    pub interpretable_as: String,
    /// Effective-address expression for loads/stores (e.g. `"\rs1 \imm +"`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub address: Option<String>,
    /// Branch condition expression; leaves non-zero on the stack when taken.
    /// `None` for unconditional jumps.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub condition: Option<String>,
    /// Branch/jump target expression (e.g. `"\pc \imm +"` or `"\rs1 \imm +"`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub target: Option<String>,
    /// Memory access shape for load/store instructions.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub memory: Option<MemoryAccessDescriptor>,
    /// Floating-point operations contributed to the FLOP counter when the
    /// instruction commits.
    #[serde(default)]
    pub flops: u32,
    /// ISA extension the instruction belongs to (`"I"`, `"M"`, `"F"`, `"D"`).
    #[serde(default)]
    pub extension: String,
}

impl InstructionDescriptor {
    /// True for conditional branches and unconditional jumps.
    pub fn is_control_flow(&self) -> bool {
        self.functional_class == FunctionalClass::Branch
    }

    /// True for unconditional jumps (`jal`, `jalr`, `j`, …).
    pub fn is_unconditional_jump(&self) -> bool {
        self.is_control_flow() && self.condition.is_none()
    }

    /// True for conditional branches.
    pub fn is_conditional_branch(&self) -> bool {
        self.is_control_flow() && self.condition.is_some()
    }

    /// True when the instruction reads or writes memory.
    pub fn is_memory(&self) -> bool {
        self.memory.is_some()
    }

    /// True for load instructions.
    pub fn is_load(&self) -> bool {
        self.memory.map(|m| !m.is_store).unwrap_or(false)
    }

    /// True for store instructions.
    pub fn is_store(&self) -> bool {
        self.memory.map(|m| m.is_store).unwrap_or(false)
    }

    /// Names of arguments written back to registers.
    pub fn write_back_args(&self) -> impl Iterator<Item = &ArgumentDescriptor> {
        self.arguments.iter().filter(|a| a.write_back)
    }

    /// Look up an argument descriptor by name.
    pub fn argument(&self, name: &str) -> Option<&ArgumentDescriptor> {
        self.arguments.iter().find(|a| a.name == name)
    }
}

/// The complete, extensible instruction set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstructionSet {
    instructions: Vec<InstructionDescriptor>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl InstructionSet {
    /// An empty instruction set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in RV32IM+F (plus a D subset) instruction set.
    pub fn rv32imf() -> Self {
        let mut set = Self::new();
        for descriptor in crate::riscv::base_instructions() {
            set.add(descriptor);
        }
        set
    }

    /// Add or replace an instruction.
    pub fn add(&mut self, descriptor: InstructionDescriptor) {
        if let Some(&i) = self.index.get(&descriptor.name) {
            self.instructions[i] = descriptor;
        } else {
            assert!(
                self.instructions.len() < u16::MAX as usize,
                "instruction set exceeds DescriptorId range"
            );
            self.index.insert(descriptor.name.clone(), self.instructions.len());
            self.instructions.push(descriptor);
        }
    }

    /// Look up an instruction by mnemonic.
    pub fn get(&self, name: &str) -> Option<&InstructionDescriptor> {
        self.index.get(name).map(|&i| &self.instructions[i])
    }

    /// Dense id of the instruction named `name` within this set.
    pub fn id_of(&self, name: &str) -> Option<DescriptorId> {
        self.index.get(name).map(|&i| DescriptorId(i as u16))
    }

    /// Descriptor by dense id (see [`InstructionSet::id_of`]).
    pub fn get_by_id(&self, id: DescriptorId) -> Option<&InstructionDescriptor> {
        self.instructions.get(id.index())
    }

    /// Iterate `(id, descriptor)` pairs in id order.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (DescriptorId, &InstructionDescriptor)> {
        self.instructions.iter().enumerate().map(|(i, d)| (DescriptorId(i as u16), d))
    }

    /// True when the mnemonic exists (either directly or as a pseudo-instruction).
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Number of instructions in the set.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterate over all descriptors.
    pub fn iter(&self) -> impl Iterator<Item = &InstructionDescriptor> {
        self.instructions.iter()
    }

    /// Serialize the whole set to pretty JSON (the paper's configuration-file
    /// format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.instructions).expect("instruction set serializes")
    }

    /// Load a set from JSON produced by [`InstructionSet::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let instructions: Vec<InstructionDescriptor> = serde_json::from_str(json)?;
        let mut set = Self::new();
        for d in instructions {
            set.add(d);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_set_contains_core_instructions() {
        let isa = InstructionSet::rv32imf();
        for name in [
            "add", "addi", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu", "lui",
            "auipc", "lw", "lh", "lb", "lbu", "lhu", "sw", "sh", "sb", "beq", "bne", "blt", "bge",
            "bltu", "bgeu", "jal", "jalr", "mul", "div", "rem", "fadd.s", "fsub.s", "fmul.s",
            "fdiv.s", "flw", "fsw", "fsqrt.s", "feq.s", "flt.s", "fcvt.s.w", "fcvt.w.s",
        ] {
            assert!(isa.contains(name), "missing instruction {name}");
        }
        assert!(isa.len() > 60);
    }

    #[test]
    fn add_or_replace_keeps_single_entry() {
        let mut set = InstructionSet::new();
        let mut d = InstructionSet::rv32imf().get("add").unwrap().clone();
        set.add(d.clone());
        assert_eq!(set.len(), 1);
        d.flops = 7;
        set.add(d);
        assert_eq!(set.len(), 1);
        assert_eq!(set.get("add").unwrap().flops, 7);
    }

    #[test]
    fn descriptor_ids_are_dense_and_stable() {
        let isa = InstructionSet::rv32imf();
        // Every mnemonic round-trips through its id.
        for (id, d) in isa.iter_with_ids() {
            assert_eq!(isa.id_of(&d.name), Some(id));
            assert_eq!(isa.get_by_id(id).unwrap().name, d.name);
        }
        // Ids cover 0..len densely.
        let ids: Vec<usize> = isa.iter_with_ids().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, (0..isa.len()).collect::<Vec<_>>());
        assert!(isa.id_of("not-an-instruction").is_none());
        assert!(isa.get_by_id(DescriptorId(u16::MAX)).is_none());

        // Replacing a descriptor keeps its id.
        let mut set = InstructionSet::rv32imf();
        let before = set.id_of("add").unwrap();
        let mut d = set.get("add").unwrap().clone();
        d.flops = 3;
        set.add(d);
        assert_eq!(set.id_of("add").unwrap(), before);
        assert_eq!(format!("{before}"), format!("#{}", before.0));
    }

    #[test]
    fn json_round_trip_preserves_set() {
        let isa = InstructionSet::rv32imf();
        let json = isa.to_json();
        let back = InstructionSet::from_json(&json).unwrap();
        assert_eq!(back.len(), isa.len());
        assert_eq!(back.get("add").unwrap(), isa.get("add").unwrap());
        assert_eq!(back.get("beq").unwrap(), isa.get("beq").unwrap());
        assert_eq!(back.get("flw").unwrap(), isa.get("flw").unwrap());
    }

    #[test]
    fn listing1_style_json_parses() {
        // A user-supplied extension instruction in the paper's format.
        let json = r#"[{
            "name": "add3",
            "instructionType": "kArithmetic",
            "functional_class": "Fx",
            "arguments": [
                {"name": "rd", "kind": "IntReg", "type": "kInt", "writeBack": true},
                {"name": "rs1", "kind": "IntReg", "type": "kInt"},
                {"name": "rs2", "kind": "IntReg", "type": "kInt"}
            ],
            "interpretableAs": "\\rs1 \\rs2 + 3 + \\rd ="
        }]"#;
        let set = InstructionSet::from_json(json).unwrap();
        let d = set.get("add3").unwrap();
        assert_eq!(d.arguments.len(), 3);
        assert!(d.arguments[0].write_back);
        assert_eq!(d.flops, 0);
    }

    #[test]
    fn classification_helpers() {
        let isa = InstructionSet::rv32imf();
        assert!(isa.get("beq").unwrap().is_conditional_branch());
        assert!(!isa.get("beq").unwrap().is_unconditional_jump());
        assert!(isa.get("jal").unwrap().is_unconditional_jump());
        assert!(isa.get("lw").unwrap().is_load());
        assert!(isa.get("sw").unwrap().is_store());
        assert!(!isa.get("add").unwrap().is_memory());
        assert!(isa.get("fadd.s").unwrap().flops >= 1);
        assert_eq!(isa.get("add").unwrap().flops, 0);
    }

    #[test]
    fn write_back_args_are_destinations() {
        let isa = InstructionSet::rv32imf();
        let add = isa.get("add").unwrap();
        let wb: Vec<_> = add.write_back_args().map(|a| a.name.as_str()).collect();
        assert_eq!(wb, vec!["rd"]);
        let sw = isa.get("sw").unwrap();
        assert_eq!(sw.write_back_args().count(), 0);
    }
}
