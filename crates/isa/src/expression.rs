//! Stack-based postfix interpreter for instruction semantics.
//!
//! Each instruction descriptor carries an `interpretableAs` string (paper
//! Listing 1), e.g. `"\rs1 \rs2 + \rd ="` for `add`.  Tokens are separated by
//! whitespace:
//!
//! * `\name` — pushes the value bound to argument `name` (`rs1`, `imm`, `pc`, …).
//!   When followed by `=`, the token instead names the assignment target.
//! * integer / float literals — pushed as constants.
//! * binary and unary operators — see [`crate::value::binary_op`] and
//!   [`crate::value::unary_op`].
//! * `=` — pops a value and records an assignment to the preceding argument
//!   reference (the paper's "binary operator `=` with a side effect").
//!
//! The evaluator produces an [`EvalOutput`]: the value left on the stack (used
//! for branch conditions and effective addresses) plus the list of assignment
//! side effects (used for register write-back).

use crate::types::Exception;
use crate::value::{binary_op, unary_op, TypedValue};
use std::collections::HashMap;

/// Result of evaluating one semantics expression.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalOutput {
    /// Value left on the stack after evaluation, if any.  Branch instructions
    /// leave their taken/not-taken condition here; address expressions leave
    /// the effective address.
    pub result: Option<TypedValue>,
    /// Assignment side effects, in evaluation order: `(argument name, value)`.
    pub assignments: Vec<(String, TypedValue)>,
}

/// Postfix expression evaluator with named argument bindings.
#[derive(Debug, Clone, Default)]
pub struct Evaluator {
    bindings: HashMap<String, TypedValue>,
}

const UNARY_OPS: &[&str] = &[
    "!", "neg", "not", "sext8", "sext16", "zext8", "zext16", "fsqrt", "dsqrt", "fneg", "fabs",
    "i2f", "u2f", "f2i", "f2u", "i2d", "u2d", "d2i", "d2u", "f2d", "d2f", "bits2f", "f2bits",
];

const BINARY_OPS: &[&str] = &[
    "+", "-", "*", "/", "%", "u/", "u%", "mulh", "mulhu", "mulhsu", "&", "|", "^", "<<", ">>",
    ">>>", "<", "u<", ">", "u>", "<=", ">=", "u>=", "u<=", "==", "!=", "f+", "f-", "f*", "f/",
    "fmin", "fmax", "f==", "f<", "f<=", "fsgnj", "fsgnjn", "fsgnjx", "d+", "d-", "d*", "d/",
    "dmin", "dmax", "d==", "d<", "d<=",
];

impl Evaluator {
    /// Create an evaluator with no bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind argument `name` to `value`.  Typically called for `rs1`, `rs2`,
    /// `imm`, `pc`, and the old value of `rd`.
    pub fn bind(&mut self, name: &str, value: TypedValue) {
        self.bindings.insert(name.to_string(), value);
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<TypedValue> {
        self.bindings.get(name).copied()
    }

    /// Remove all bindings so the evaluator can be reused.
    pub fn clear(&mut self) {
        self.bindings.clear();
    }

    /// Evaluate `expr` and return the stack result plus assignments.
    pub fn run(&self, expr: &str) -> Result<EvalOutput, Exception> {
        // The stack holds either plain values or argument references; a
        // reference is only resolved when consumed by an operator, so that
        // `\rd =` can treat it as an assignment *target*.
        enum Slot {
            Value(TypedValue),
            ArgRef(String),
        }

        let mut stack: Vec<Slot> = Vec::with_capacity(8);
        let mut out = EvalOutput::default();

        let resolve =
            |slot: Slot, bindings: &HashMap<String, TypedValue>| -> Result<TypedValue, Exception> {
                match slot {
                    Slot::Value(v) => Ok(v),
                    Slot::ArgRef(name) => bindings.get(&name).copied().ok_or_else(|| {
                        Exception::Interpreter(format!("unbound argument `\\{name}`"))
                    }),
                }
            };

        for token in expr.split_whitespace() {
            if let Some(name) = token.strip_prefix('\\') {
                stack.push(Slot::ArgRef(name.to_string()));
            } else if token == "=" {
                // Assignment: top of stack is the target reference, below it
                // the value to assign.
                let target = stack
                    .pop()
                    .ok_or_else(|| Exception::Interpreter("`=` with empty stack".to_string()))?;
                let name = match target {
                    Slot::ArgRef(name) => name,
                    Slot::Value(_) => {
                        return Err(Exception::Interpreter(
                            "`=` target must be an argument reference".to_string(),
                        ))
                    }
                };
                let value_slot = stack.pop().ok_or_else(|| {
                    Exception::Interpreter("`=` missing value operand".to_string())
                })?;
                let value = resolve(value_slot, &self.bindings)?;
                out.assignments.push((name, value));
            } else if BINARY_OPS.contains(&token) {
                let b = stack.pop().ok_or_else(|| {
                    Exception::Interpreter(format!("`{token}` missing right operand"))
                })?;
                let a = stack.pop().ok_or_else(|| {
                    Exception::Interpreter(format!("`{token}` missing left operand"))
                })?;
                let a = resolve(a, &self.bindings)?;
                let b = resolve(b, &self.bindings)?;
                stack.push(Slot::Value(binary_op(token, a, b)?));
            } else if UNARY_OPS.contains(&token) {
                let a = stack
                    .pop()
                    .ok_or_else(|| Exception::Interpreter(format!("`{token}` missing operand")))?;
                let a = resolve(a, &self.bindings)?;
                stack.push(Slot::Value(unary_op(token, a)?));
            } else if let Ok(v) = token.parse::<i64>() {
                stack.push(Slot::Value(TypedValue::int(v as i32)));
            } else if let Ok(v) = token.parse::<f32>() {
                stack.push(Slot::Value(TypedValue::float(v)));
            } else {
                return Err(Exception::Interpreter(format!("unknown token `{token}`")));
            }
        }

        if let Some(top) = stack.pop() {
            out.result = Some(resolve(top, &self.bindings)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_with(expr: &str, binds: &[(&str, TypedValue)]) -> EvalOutput {
        let mut e = Evaluator::new();
        for (n, v) in binds {
            e.bind(n, *v);
        }
        e.run(expr).unwrap()
    }

    #[test]
    fn add_semantics_from_paper_listing() {
        // Listing 1: "\rs1 \rs2 + \rd ="
        let out = eval_with(
            "\\rs1 \\rs2 + \\rd =",
            &[
                ("rs1", TypedValue::int(40)),
                ("rs2", TypedValue::int(2)),
                ("rd", TypedValue::int(0)),
            ],
        );
        assert_eq!(out.assignments, vec![("rd".to_string(), TypedValue::int(42))]);
        assert_eq!(out.result, None);
    }

    #[test]
    fn branch_condition_leaves_result_on_stack() {
        let out =
            eval_with("\\rs1 \\rs2 <", &[("rs1", TypedValue::int(1)), ("rs2", TypedValue::int(2))]);
        assert_eq!(out.result.unwrap().as_i64(), 1);
        assert!(out.assignments.is_empty());
    }

    #[test]
    fn address_computation_with_immediate() {
        let out = eval_with(
            "\\rs1 \\imm +",
            &[("rs1", TypedValue::int(100)), ("imm", TypedValue::int(-4))],
        );
        assert_eq!(out.result.unwrap().as_i64(), 96);
    }

    #[test]
    fn jump_writes_link_and_computes_target() {
        // jal: "\pc 4 + \rd = \pc \imm +"
        let out = eval_with(
            "\\pc 4 + \\rd = \\pc \\imm +",
            &[("pc", TypedValue::int(16)), ("imm", TypedValue::int(8)), ("rd", TypedValue::int(0))],
        );
        assert_eq!(out.assignments, vec![("rd".to_string(), TypedValue::int(20))]);
        assert_eq!(out.result.unwrap().as_i64(), 24);
    }

    #[test]
    fn literals_are_constants() {
        let out = eval_with("3 4 *", &[]);
        assert_eq!(out.result.unwrap().as_i64(), 12);
    }

    #[test]
    fn unbound_argument_is_error() {
        let e = Evaluator::new();
        let err = e.run("\\rs1 \\rs2 +").unwrap_err();
        assert!(matches!(err, Exception::Interpreter(_)));
    }

    #[test]
    fn division_by_zero_propagates() {
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::int(5));
        e.bind("rs2", TypedValue::int(0));
        e.bind("rd", TypedValue::int(0));
        assert_eq!(e.run("\\rs1 \\rs2 / \\rd =").unwrap_err(), Exception::DivisionByZero);
    }

    #[test]
    fn malformed_expressions_report_errors() {
        let e = Evaluator::new();
        assert!(e.run("+").is_err());
        assert!(e.run("1 =").is_err());
        assert!(e.run("=").is_err());
        assert!(e.run("bogus_token").is_err());
        let mut e2 = Evaluator::new();
        e2.bind("x", TypedValue::int(1));
        assert!(e2.run("\\x !missing_op").is_err());
    }

    #[test]
    fn multiple_assignments_record_in_order() {
        let out =
            eval_with("1 \\a = 2 \\b =", &[("a", TypedValue::int(0)), ("b", TypedValue::int(0))]);
        assert_eq!(out.assignments.len(), 2);
        assert_eq!(out.assignments[0].0, "a");
        assert_eq!(out.assignments[1].0, "b");
    }

    #[test]
    fn float_expression() {
        let out = eval_with(
            "\\rs1 \\rs2 f* \\rd =",
            &[
                ("rs1", TypedValue::float(1.5)),
                ("rs2", TypedValue::float(2.0)),
                ("rd", TypedValue::float(0.0)),
            ],
        );
        assert_eq!(out.assignments[0].1.as_f32(), 3.0);
    }

    #[test]
    fn evaluator_reuse_after_clear() {
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::int(1));
        assert!(e.get("rs1").is_some());
        e.clear();
        assert!(e.get("rs1").is_none());
    }
}
