//! Stack-based postfix interpreter for instruction semantics.
//!
//! Each instruction descriptor carries an `interpretableAs` string (paper
//! Listing 1), e.g. `"\rs1 \rs2 + \rd ="` for `add`.  Tokens are separated by
//! whitespace:
//!
//! * `\name` — pushes the value bound to argument `name` (`rs1`, `imm`, `pc`, …).
//!   When followed by `=`, the token instead names the assignment target.
//! * integer / float literals — pushed as constants.
//! * binary and unary operators — see [`crate::value::binary_op`] and
//!   [`crate::value::unary_op`].
//! * `=` — pops a value and records an assignment to the preceding argument
//!   reference (the paper's "binary operator `=` with a side effect").
//!
//! The evaluator produces an [`EvalOutput`]: the value left on the stack (used
//! for branch conditions and effective addresses) plus the list of assignment
//! side effects (used for register write-back).

use crate::inline_vec::InlineVec;
use crate::intern::Sym;
use crate::types::Exception;
use crate::value::{binary_op, unary_op, TypedValue};
use std::collections::HashMap;

/// Result of evaluating one semantics expression.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalOutput {
    /// Value left on the stack after evaluation, if any.  Branch instructions
    /// leave their taken/not-taken condition here; address expressions leave
    /// the effective address.
    pub result: Option<TypedValue>,
    /// Assignment side effects, in evaluation order: `(argument name, value)`.
    pub assignments: Vec<(String, TypedValue)>,
}

/// Postfix expression evaluator with named argument bindings.
#[derive(Debug, Clone, Default)]
pub struct Evaluator {
    bindings: HashMap<String, TypedValue>,
}

/// A pre-resolved binary operator implementation.
pub(crate) type BinFn = fn(TypedValue, TypedValue) -> Result<TypedValue, Exception>;
/// A pre-resolved unary operator implementation.
pub(crate) type UnFn = fn(TypedValue) -> Result<TypedValue, Exception>;

// Each table entry pairs the token with a monomorphic wrapper whose token is
// a literal, so the string match inside `binary_op`/`unary_op` constant-folds
// away: compiled expressions dispatch operators through a direct call, never
// by re-matching the token string at run time.
macro_rules! op_tables {
    (bin: [$($b:literal),* $(,)?], un: [$($u:literal),* $(,)?]) => {
        const UNARY_OPS: &[&str] = &[$($u),*];
        const BINARY_OPS: &[&str] = &[$($b),*];
        const BINARY_FNS: &[(&str, BinFn)] =
            &[$(($b, (|a, b| binary_op($b, a, b)) as BinFn)),*];
        const UNARY_FNS: &[(&str, UnFn)] = &[$(($u, (|a| unary_op($u, a)) as UnFn)),*];
    };
}

op_tables! {
    bin: [
        "+", "-", "*", "/", "%", "u/", "u%", "mulh", "mulhu", "mulhsu", "&", "|", "^", "<<",
        ">>", ">>>", "<", "u<", ">", "u>", "<=", ">=", "u>=", "u<=", "==", "!=", "f+", "f-",
        "f*", "f/", "fmin", "fmax", "f==", "f<", "f<=", "fsgnj", "fsgnjn", "fsgnjx", "d+",
        "d-", "d*", "d/", "dmin", "dmax", "d==", "d<", "d<=",
    ],
    un: [
        "!", "neg", "not", "sext8", "sext16", "zext8", "zext16", "fsqrt", "dsqrt", "fneg",
        "fabs", "i2f", "u2f", "f2i", "f2u", "i2d", "u2d", "d2i", "d2u", "f2d", "d2f",
        "bits2f", "f2bits",
    ]
}

impl Evaluator {
    /// Create an evaluator with no bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind argument `name` to `value`.  Typically called for `rs1`, `rs2`,
    /// `imm`, `pc`, and the old value of `rd`.
    pub fn bind(&mut self, name: &str, value: TypedValue) {
        self.bindings.insert(name.to_string(), value);
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<TypedValue> {
        self.bindings.get(name).copied()
    }

    /// Remove all bindings so the evaluator can be reused.
    pub fn clear(&mut self) {
        self.bindings.clear();
    }

    /// Evaluate `expr` and return the stack result plus assignments.
    pub fn run(&self, expr: &str) -> Result<EvalOutput, Exception> {
        // The stack holds either plain values or argument references; a
        // reference is only resolved when consumed by an operator, so that
        // `\rd =` can treat it as an assignment *target*.
        enum Slot {
            Value(TypedValue),
            ArgRef(String),
        }

        let mut stack: Vec<Slot> = Vec::with_capacity(8);
        let mut out = EvalOutput::default();

        let resolve =
            |slot: Slot, bindings: &HashMap<String, TypedValue>| -> Result<TypedValue, Exception> {
                match slot {
                    Slot::Value(v) => Ok(v),
                    Slot::ArgRef(name) => bindings.get(&name).copied().ok_or_else(|| {
                        Exception::Interpreter(format!("unbound argument `\\{name}`"))
                    }),
                }
            };

        for token in expr.split_whitespace() {
            if let Some(name) = token.strip_prefix('\\') {
                stack.push(Slot::ArgRef(name.to_string()));
            } else if token == "=" {
                // Assignment: top of stack is the target reference, below it
                // the value to assign.
                let target = stack
                    .pop()
                    .ok_or_else(|| Exception::Interpreter("`=` with empty stack".to_string()))?;
                let name = match target {
                    Slot::ArgRef(name) => name,
                    Slot::Value(_) => {
                        return Err(Exception::Interpreter(
                            "`=` target must be an argument reference".to_string(),
                        ))
                    }
                };
                let value_slot = stack.pop().ok_or_else(|| {
                    Exception::Interpreter("`=` missing value operand".to_string())
                })?;
                let value = resolve(value_slot, &self.bindings)?;
                out.assignments.push((name, value));
            } else if BINARY_OPS.contains(&token) {
                let b = stack.pop().ok_or_else(|| {
                    Exception::Interpreter(format!("`{token}` missing right operand"))
                })?;
                let a = stack.pop().ok_or_else(|| {
                    Exception::Interpreter(format!("`{token}` missing left operand"))
                })?;
                let a = resolve(a, &self.bindings)?;
                let b = resolve(b, &self.bindings)?;
                stack.push(Slot::Value(binary_op(token, a, b)?));
            } else if UNARY_OPS.contains(&token) {
                let a = stack
                    .pop()
                    .ok_or_else(|| Exception::Interpreter(format!("`{token}` missing operand")))?;
                let a = resolve(a, &self.bindings)?;
                stack.push(Slot::Value(unary_op(token, a)?));
            } else if let Ok(v) = token.parse::<i64>() {
                stack.push(Slot::Value(TypedValue::int(v as i32)));
            } else if let Ok(v) = token.parse::<f32>() {
                stack.push(Slot::Value(TypedValue::float(v)));
            } else {
                return Err(Exception::Interpreter(format!("unknown token `{token}`")));
            }
        }

        if let Some(top) = stack.pop() {
            out.result = Some(resolve(top, &self.bindings)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Compiled expressions: decode-once, allocation-free evaluation
// ---------------------------------------------------------------------------

/// Maximum evaluation-stack depth a compiled expression may need.  The
/// built-in table peaks at 4; user expressions beyond this are rejected at
/// compile time instead of overflowing at runtime.
const MAX_STACK: usize = 16;

/// One pre-decoded operation of a compiled postfix expression.  Operators
/// are resolved to direct function pointers at compile time, so evaluation
/// never re-matches a token string.
#[derive(Debug, Clone, Copy)]
enum COp {
    /// Resolve an argument binding and push its value.
    Arg(Sym),
    /// Push a constant.
    Const(TypedValue),
    /// Pop two values, apply the binary operator, push the result.
    Bin(BinFn),
    /// Pop one value, apply the unary operator, push the result.
    Un(UnFn),
    /// Pop one value and record an assignment to the named argument.
    Assign(Sym),
}

/// A postfix semantics expression compiled to a flat op sequence.
///
/// Compilation happens once per instruction descriptor (at predecode time);
/// evaluation is then a tight loop over [`COp`]s with a fixed-size value
/// stack and interned-symbol bindings — no tokenizing, no hashing, no heap.
///
/// For well-formed expressions (every built-in descriptor, and anything a
/// reasonable user set contains) [`CompiledExpr::run`] produces exactly the
/// same results and exceptions as [`Evaluator::run`] on the source string.
/// The compiled path is deliberately stricter on degenerate inputs: argument
/// references are resolved when *pushed* (an unbound ref the string
/// evaluator would have left unconsumed becomes an "unbound argument"
/// error), and expressions needing more than [`MAX_STACK`] stack slots or 4
/// assignments are rejected at compile time instead of executing.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    ops: Box<[COp]>,
}

/// Result of evaluating a [`CompiledExpr`] — the allocation-free analogue of
/// [`EvalOutput`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledOutput {
    /// Value left on the stack after evaluation, if any.
    pub result: Option<TypedValue>,
    /// Assignment side effects in evaluation order.
    pub assignments: InlineVec<(Sym, TypedValue), 4>,
}

/// Interned-symbol argument bindings for compiled evaluation.  A linear scan
/// over at most 8 `(Sym, value)` pairs beats a `HashMap<String, _>` by a wide
/// margin at the 4–6 bindings a RISC-V instruction needs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bindings {
    entries: InlineVec<(Sym, TypedValue), 8>,
}

impl Bindings {
    /// No bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `sym` to `value`, replacing any previous binding.
    pub fn bind(&mut self, sym: Sym, value: TypedValue) {
        for entry in self.entries.iter_mut() {
            if entry.0 == sym {
                entry.1 = value;
                return;
            }
        }
        self.entries.push((sym, value));
    }

    /// Look up a binding.
    pub fn get(&self, sym: Sym) -> Option<TypedValue> {
        self.entries.iter().find(|(s, _)| *s == sym).map(|(_, v)| *v)
    }

    /// Remove all bindings.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl CompiledExpr {
    /// Compile `expr`.  Structural errors (unknown tokens, stack underflow,
    /// malformed `=`) are reported here with the same messages the string
    /// evaluator would produce at runtime.
    pub fn compile(expr: &str) -> Result<CompiledExpr, Exception> {
        let tokens: Vec<&str> = expr.split_whitespace().collect();
        let mut ops = Vec::with_capacity(tokens.len());
        let mut depth = 0usize;
        let mut assignments = 0usize;
        let mut i = 0;

        let underflow = |msg: String| Err::<(), Exception>(Exception::Interpreter(msg));
        while i < tokens.len() {
            let token = tokens[i];
            if let Some(name) = token.strip_prefix('\\') {
                // `\name =` assigns; any other use resolves and pushes.
                if tokens.get(i + 1) == Some(&"=") {
                    if depth == 0 {
                        underflow("`=` missing value operand".to_string())?;
                    }
                    depth -= 1;
                    assignments += 1;
                    if assignments > 4 {
                        return Err(Exception::Interpreter(
                            "too many assignments in one expression (max 4)".to_string(),
                        ));
                    }
                    ops.push(COp::Assign(Sym::new(name)));
                    i += 2;
                    continue;
                }
                depth += 1;
                ops.push(COp::Arg(Sym::new(name)));
            } else if token == "=" {
                // An `=` whose target was not an argument reference.
                if depth == 0 {
                    underflow("`=` with empty stack".to_string())?;
                }
                return Err(Exception::Interpreter(
                    "`=` target must be an argument reference".to_string(),
                ));
            } else if let Some(&(_, op)) = BINARY_FNS.iter().find(|(t, _)| *t == token) {
                if depth < 1 {
                    underflow(format!("`{token}` missing right operand"))?;
                }
                if depth < 2 {
                    underflow(format!("`{token}` missing left operand"))?;
                }
                depth -= 1;
                ops.push(COp::Bin(op));
            } else if let Some(&(_, op)) = UNARY_FNS.iter().find(|(t, _)| *t == token) {
                if depth < 1 {
                    underflow(format!("`{token}` missing operand"))?;
                }
                ops.push(COp::Un(op));
            } else if let Ok(v) = token.parse::<i64>() {
                depth += 1;
                ops.push(COp::Const(TypedValue::int(v as i32)));
            } else if let Ok(v) = token.parse::<f32>() {
                depth += 1;
                ops.push(COp::Const(TypedValue::float(v)));
            } else {
                return Err(Exception::Interpreter(format!("unknown token `{token}`")));
            }
            if depth > MAX_STACK {
                return Err(Exception::Interpreter(format!(
                    "expression needs more than {MAX_STACK} stack slots"
                )));
            }
            i += 1;
        }
        Ok(CompiledExpr { ops: ops.into_boxed_slice() })
    }

    /// True when the expression performs no operations (compiled from an
    /// empty string).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluate against `bindings`.  Semantically identical to running the
    /// source string through [`Evaluator::run`] with the same bindings.
    pub fn run(&self, bindings: &Bindings) -> Result<CompiledOutput, Exception> {
        let mut stack = [TypedValue::default(); MAX_STACK];
        let mut depth = 0usize;
        let mut out = CompiledOutput::default();
        for op in self.ops.iter() {
            match *op {
                COp::Arg(sym) => {
                    stack[depth] = bindings.get(sym).ok_or_else(|| {
                        Exception::Interpreter(format!("unbound argument `\\{sym}`"))
                    })?;
                    depth += 1;
                }
                COp::Const(v) => {
                    stack[depth] = v;
                    depth += 1;
                }
                COp::Bin(op) => {
                    let b = stack[depth - 1];
                    let a = stack[depth - 2];
                    depth -= 1;
                    stack[depth - 1] = op(a, b)?;
                }
                COp::Un(op) => {
                    stack[depth - 1] = op(stack[depth - 1])?;
                }
                COp::Assign(sym) => {
                    depth -= 1;
                    out.assignments.push((sym, stack[depth]));
                }
            }
        }
        if depth > 0 {
            out.result = Some(stack[depth - 1]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_with(expr: &str, binds: &[(&str, TypedValue)]) -> EvalOutput {
        let mut e = Evaluator::new();
        for (n, v) in binds {
            e.bind(n, *v);
        }
        e.run(expr).unwrap()
    }

    #[test]
    fn add_semantics_from_paper_listing() {
        // Listing 1: "\rs1 \rs2 + \rd ="
        let out = eval_with(
            "\\rs1 \\rs2 + \\rd =",
            &[
                ("rs1", TypedValue::int(40)),
                ("rs2", TypedValue::int(2)),
                ("rd", TypedValue::int(0)),
            ],
        );
        assert_eq!(out.assignments, vec![("rd".to_string(), TypedValue::int(42))]);
        assert_eq!(out.result, None);
    }

    #[test]
    fn branch_condition_leaves_result_on_stack() {
        let out =
            eval_with("\\rs1 \\rs2 <", &[("rs1", TypedValue::int(1)), ("rs2", TypedValue::int(2))]);
        assert_eq!(out.result.unwrap().as_i64(), 1);
        assert!(out.assignments.is_empty());
    }

    #[test]
    fn address_computation_with_immediate() {
        let out = eval_with(
            "\\rs1 \\imm +",
            &[("rs1", TypedValue::int(100)), ("imm", TypedValue::int(-4))],
        );
        assert_eq!(out.result.unwrap().as_i64(), 96);
    }

    #[test]
    fn jump_writes_link_and_computes_target() {
        // jal: "\pc 4 + \rd = \pc \imm +"
        let out = eval_with(
            "\\pc 4 + \\rd = \\pc \\imm +",
            &[("pc", TypedValue::int(16)), ("imm", TypedValue::int(8)), ("rd", TypedValue::int(0))],
        );
        assert_eq!(out.assignments, vec![("rd".to_string(), TypedValue::int(20))]);
        assert_eq!(out.result.unwrap().as_i64(), 24);
    }

    #[test]
    fn literals_are_constants() {
        let out = eval_with("3 4 *", &[]);
        assert_eq!(out.result.unwrap().as_i64(), 12);
    }

    #[test]
    fn unbound_argument_is_error() {
        let e = Evaluator::new();
        let err = e.run("\\rs1 \\rs2 +").unwrap_err();
        assert!(matches!(err, Exception::Interpreter(_)));
    }

    #[test]
    fn division_by_zero_propagates() {
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::int(5));
        e.bind("rs2", TypedValue::int(0));
        e.bind("rd", TypedValue::int(0));
        assert_eq!(e.run("\\rs1 \\rs2 / \\rd =").unwrap_err(), Exception::DivisionByZero);
    }

    #[test]
    fn malformed_expressions_report_errors() {
        let e = Evaluator::new();
        assert!(e.run("+").is_err());
        assert!(e.run("1 =").is_err());
        assert!(e.run("=").is_err());
        assert!(e.run("bogus_token").is_err());
        let mut e2 = Evaluator::new();
        e2.bind("x", TypedValue::int(1));
        assert!(e2.run("\\x !missing_op").is_err());
    }

    #[test]
    fn multiple_assignments_record_in_order() {
        let out =
            eval_with("1 \\a = 2 \\b =", &[("a", TypedValue::int(0)), ("b", TypedValue::int(0))]);
        assert_eq!(out.assignments.len(), 2);
        assert_eq!(out.assignments[0].0, "a");
        assert_eq!(out.assignments[1].0, "b");
    }

    #[test]
    fn float_expression() {
        let out = eval_with(
            "\\rs1 \\rs2 f* \\rd =",
            &[
                ("rs1", TypedValue::float(1.5)),
                ("rs2", TypedValue::float(2.0)),
                ("rd", TypedValue::float(0.0)),
            ],
        );
        assert_eq!(out.assignments[0].1.as_f32(), 3.0);
    }

    #[test]
    fn evaluator_reuse_after_clear() {
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::int(1));
        assert!(e.get("rs1").is_some());
        e.clear();
        assert!(e.get("rs1").is_none());
    }

    // ------------------------------------------------------------- compiled

    fn compiled_with(expr: &str, binds: &[(&str, TypedValue)]) -> CompiledOutput {
        let compiled = CompiledExpr::compile(expr).expect("compiles");
        let mut b = Bindings::new();
        for (n, v) in binds {
            b.bind(Sym::new(n), *v);
        }
        compiled.run(&b).expect("runs")
    }

    #[test]
    fn compiled_matches_string_evaluator_on_core_shapes() {
        let binds: &[(&str, TypedValue)] = &[
            ("rs1", TypedValue::int(40)),
            ("rs2", TypedValue::int(2)),
            ("rs3", TypedValue::int(-3)),
            ("imm", TypedValue::int(-4)),
            ("pc", TypedValue::int(16)),
            ("rd", TypedValue::int(0)),
        ];
        for expr in [
            "\\rs1 \\rs2 + \\rd =",
            "\\rs1 \\rs2 <",
            "\\rs1 \\imm +",
            "\\pc 4 + \\rd = \\pc \\imm +",
            "\\imm 12 << \\rd =",
            "\\rs1 \\imm + -2 &",
            "\\rs1 \\rs2 * \\rs3 + \\rd =",
            "3 4 *",
            "1 \\rd = 2 \\rs1 =",
        ] {
            let slow = eval_with(expr, binds);
            let fast = compiled_with(expr, binds);
            assert_eq!(slow.result, fast.result, "result of `{expr}`");
            let slow_assigns: Vec<(String, TypedValue)> = slow.assignments;
            let fast_assigns: Vec<(String, TypedValue)> =
                fast.assignments.iter().map(|(s, v)| (s.as_str().to_string(), *v)).collect();
            assert_eq!(slow_assigns, fast_assigns, "assignments of `{expr}`");
        }
    }

    #[test]
    fn compiled_float_and_unary_ops() {
        let out = compiled_with(
            "\\rs1 \\rs2 f* fneg \\rs3 f+ \\rd =",
            &[
                ("rs1", TypedValue::float(2.0)),
                ("rs2", TypedValue::float(3.0)),
                ("rs3", TypedValue::float(1.0)),
                ("rd", TypedValue::float(0.0)),
            ],
        );
        assert_eq!(out.assignments.as_slice()[0].1.as_f32(), -5.0);
    }

    #[test]
    fn compiled_exceptions_match_runtime_behaviour() {
        // Division by zero surfaces at run time, like the string path.
        let compiled = CompiledExpr::compile("\\rs1 \\rs2 / \\rd =").unwrap();
        let mut b = Bindings::new();
        b.bind(Sym::new("rs1"), TypedValue::int(5));
        b.bind(Sym::new("rs2"), TypedValue::int(0));
        assert_eq!(compiled.run(&b).unwrap_err(), Exception::DivisionByZero);

        // Unbound arguments surface at run time with the same message.
        let compiled = CompiledExpr::compile("\\rs1 \\rs2 +").unwrap();
        let err = compiled.run(&Bindings::new()).unwrap_err();
        assert!(matches!(&err, Exception::Interpreter(m) if m.contains("unbound argument")));

        // Structural errors surface at compile time with the evaluator's
        // runtime messages.
        for (expr, needle) in [
            ("+", "missing right operand"),
            ("1 +", "missing left operand"),
            ("neg", "missing operand"),
            ("1 =", "argument reference"),
            ("=", "empty stack"),
            ("bogus_token", "unknown token"),
        ] {
            let err = CompiledExpr::compile(expr).unwrap_err();
            assert!(
                matches!(&err, Exception::Interpreter(m) if m.contains(needle)),
                "`{expr}` → {err:?}"
            );
        }
    }

    #[test]
    fn compiled_empty_expression_is_empty() {
        let compiled = CompiledExpr::compile("").unwrap();
        assert!(compiled.is_empty());
        let out = compiled.run(&Bindings::new()).unwrap();
        assert!(out.result.is_none());
        assert!(out.assignments.is_empty());
    }

    #[test]
    fn bindings_overwrite_and_clear() {
        let mut b = Bindings::new();
        let rs1 = Sym::new("rs1");
        b.bind(rs1, TypedValue::int(1));
        b.bind(rs1, TypedValue::int(2));
        assert_eq!(b.get(rs1).unwrap().as_i64(), 2);
        assert!(b.get(Sym::new("rs2")).is_none());
        b.clear();
        assert!(b.get(rs1).is_none());
    }
}
