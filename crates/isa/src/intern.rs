//! Global string interner for hot-path identity comparison.
//!
//! Mnemonics and operand-argument names are compared millions of times per
//! simulated second (issue-window scans, wake-ups, statistics).  Interning
//! turns every such comparison into a `u32` equality while keeping
//! `&'static str` round-tripping for display and serde: a [`Sym`] serializes
//! as its string and deserializes by re-interning, so every JSON surface
//! (retirement traces, statistics, snapshots) is unchanged.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a dense `u32` id into the process-wide intern table.
///
/// Two `Sym`s are equal iff their strings are equal, so `==` on `Sym` is the
/// integer comparison the pipeline hot path wants.  `Ord` follows the id
/// (interning order), *not* lexicographic order — sort by [`Sym::as_str`]
/// where display order matters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

/// `Sym::default()` — the interned empty string.
pub const SYM_EMPTY: Sym = Sym(0);
/// The interned `"pc"` (bound by every semantics evaluation).
pub const SYM_PC: Sym = Sym(1);
/// The interned `"rd"`.
pub const SYM_RD: Sym = Sym(2);
/// The interned `"rs1"`.
pub const SYM_RS1: Sym = Sym(3);
/// The interned `"rs2"` (the store-data operand by convention).
pub const SYM_RS2: Sym = Sym(4);
/// The interned `"rs3"`.
pub const SYM_RS3: Sym = Sym(5);
/// The interned `"imm"`.
pub const SYM_IMM: Sym = Sym(6);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        let mut interner = Interner { by_name: HashMap::new(), names: Vec::new() };
        // Well-known ids, in the exact order of the `SYM_*` constants above.
        for name in ["", "pc", "rd", "rs1", "rs2", "rs3", "imm"] {
            interner.intern(name);
        }
        interner
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_name.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let id = self.names.len() as u32;
        self.names.push(leaked);
        self.by_name.insert(leaked, id);
        id
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Sym {
    /// Intern `s`, returning its stable id.  Repeated calls with the same
    /// string return the same `Sym` for the lifetime of the process.
    pub fn new(s: &str) -> Sym {
        {
            let guard = interner().read().expect("interner poisoned");
            if let Some(&id) = guard.by_name.get(s) {
                return Sym(id);
            }
        }
        Sym(interner().write().expect("interner poisoned").intern(s))
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").names[self.0 as usize]
    }

    /// The raw id (dense, process-wide).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Default for Sym {
    fn default() -> Self {
        SYM_EMPTY
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl Serialize for Sym {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl Deserialize for Sym {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        value
            .as_str()
            .map(Sym::new)
            .ok_or_else(|| serde::Error::custom(format!("expected string, got {value:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_identity_preserving() {
        let a = Sym::new("addi");
        let b = Sym::new("addi");
        let c = Sym::new("add");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "addi");
        assert_eq!(a, "addi");
        assert_eq!("addi", a);
        assert_ne!(a, "add");
    }

    #[test]
    fn well_known_symbols_match_their_constants() {
        assert_eq!(Sym::new(""), SYM_EMPTY);
        assert_eq!(Sym::new("pc"), SYM_PC);
        assert_eq!(Sym::new("rd"), SYM_RD);
        assert_eq!(Sym::new("rs1"), SYM_RS1);
        assert_eq!(Sym::new("rs2"), SYM_RS2);
        assert_eq!(Sym::new("rs3"), SYM_RS3);
        assert_eq!(Sym::new("imm"), SYM_IMM);
        assert_eq!(Sym::default(), SYM_EMPTY);
    }

    #[test]
    fn display_and_debug_show_the_string() {
        let s = Sym::new("beq");
        assert_eq!(s.to_string(), "beq");
        assert_eq!(format!("{s:?}"), "\"beq\"");
        assert_eq!(format!("{s:<5}|"), "beq  |", "Display honours padding");
    }

    #[test]
    fn serde_round_trips_as_string() {
        let s = Sym::new("fmadd.s");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"fmadd.s\"");
        let back: Sym = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(serde_json::from_str::<Sym>("17").is_err());
    }
}
