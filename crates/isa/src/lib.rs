//! # rvsim-isa — RISC-V instruction-set model
//!
//! This crate models the RV32IM+F instruction set the way the SC'24 paper's
//! simulator does: instructions are *data*, not code.  Every instruction is an
//! [`InstructionDescriptor`] holding its argument list and a small postfix
//! expression (the paper's `interpretableAs` string) that a stack-based
//! interpreter ([`expression::Evaluator`]) executes when a functional unit
//! finishes the instruction.
//!
//! The crate provides:
//!
//! * [`register`] — architectural register identifiers (`x0..x31`, `f0..f31`),
//!   ABI aliases, and the 64-bit [`register::RegisterValue`] representation
//!   with data-type metadata (paper §III-B).
//! * [`value`] — [`value::TypedValue`], the operand value model used by the
//!   expression interpreter.
//! * [`expression`] — the postfix interpreter with assignment side effects and
//!   exception generation (division by zero, …).
//! * [`descriptor`] — [`InstructionDescriptor`] / [`InstructionSet`] plus JSON
//!   import/export so the instruction set can be extended by configuration,
//!   exactly like the paper's JSON instruction file (Listing 1).
//! * [`riscv`] — the built-in RV32IM+F (and a D subset) instruction table.
//! * [`pseudo`] — pseudo-instruction expansion (`li`, `la`, `mv`, `ret`, …).
//!
//! ```
//! use rvsim_isa::{InstructionSet, expression::Evaluator, value::TypedValue};
//!
//! let isa = InstructionSet::rv32imf();
//! let add = isa.get("add").unwrap();
//! let mut eval = Evaluator::new();
//! eval.bind("rs1", TypedValue::int(40));
//! eval.bind("rs2", TypedValue::int(2));
//! eval.bind("rd", TypedValue::int(0));
//! let out = eval.run(&add.interpretable_as).unwrap();
//! assert_eq!(out.assignments[0].1.as_i64(), 42);
//! ```

#![warn(missing_docs)]

pub mod descriptor;
pub mod expression;
pub mod inline_vec;
pub mod intern;
pub mod pseudo;
pub mod register;
pub mod riscv;
pub mod types;
pub mod value;

pub use descriptor::{
    ArgumentDescriptor, DescriptorId, InstructionDescriptor, InstructionSet, MemoryAccessDescriptor,
};
pub use expression::{Bindings, CompiledExpr, CompiledOutput, EvalOutput, Evaluator};
pub use inline_vec::InlineVec;
pub use intern::{Sym, SYM_EMPTY, SYM_IMM, SYM_PC, SYM_RD, SYM_RS1, SYM_RS2, SYM_RS3};
pub use register::{RegisterFileKind, RegisterId, RegisterValue};
pub use types::{ArgKind, DataType, Exception, FunctionalClass, InstructionType};
pub use value::TypedValue;
