//! Architectural register identifiers and the 64-bit register value model.
//!
//! The paper (§III-B) represents every register as a 64-bit array whose
//! interpretation depends on the executing instruction, plus metadata with the
//! data type currently stored so the GUI can show the intended value.  The
//! renaming bookkeeping itself lives in `rvsim-core`; this module only defines
//! the architectural name space and the value container.

use crate::types::DataType;
use crate::value::TypedValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which architectural register file a register belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum RegisterFileKind {
    /// Integer registers `x0`–`x31`.
    Int,
    /// Floating-point registers `f0`–`f31`.
    Fp,
}

/// Identifier of one architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct RegisterId {
    /// Register file the register belongs to.
    pub kind: RegisterFileKind,
    /// Index within the file, `0..32`.
    pub index: u8,
}

impl RegisterId {
    /// Integer register `x{index}`.
    pub fn x(index: u8) -> Self {
        debug_assert!(index < 32);
        RegisterId { kind: RegisterFileKind::Int, index }
    }

    /// Floating-point register `f{index}`.
    pub fn f(index: u8) -> Self {
        debug_assert!(index < 32);
        RegisterId { kind: RegisterFileKind::Fp, index }
    }

    /// The zero register `x0`.
    pub fn zero() -> Self {
        Self::x(0)
    }

    /// The stack pointer `x2` / `sp`.
    pub fn sp() -> Self {
        Self::x(2)
    }

    /// The return-address register `x1` / `ra`.
    pub fn ra() -> Self {
        Self::x(1)
    }

    /// True if this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.kind == RegisterFileKind::Int && self.index == 0
    }

    /// Canonical architectural name (`x7`, `f12`).
    pub fn arch_name(self) -> String {
        match self.kind {
            RegisterFileKind::Int => format!("x{}", self.index),
            RegisterFileKind::Fp => format!("f{}", self.index),
        }
    }

    /// ABI name (`a0`, `sp`, `ft3`, …).
    pub fn abi_name(self) -> &'static str {
        match self.kind {
            RegisterFileKind::Int => INT_ABI_NAMES[self.index as usize],
            RegisterFileKind::Fp => FP_ABI_NAMES[self.index as usize],
        }
    }

    /// Parse a register name.  Accepts architectural (`x5`, `f3`) and ABI
    /// (`t0`, `sp`, `fa0`) spellings.
    pub fn parse(name: &str) -> Option<RegisterId> {
        let name = name.trim();
        // Architectural spellings.
        if let Some(rest) = name.strip_prefix('x') {
            if let Ok(i) = rest.parse::<u8>() {
                if i < 32 {
                    return Some(RegisterId::x(i));
                }
            }
        }
        if let Some(rest) = name.strip_prefix('f') {
            if let Ok(i) = rest.parse::<u8>() {
                if i < 32 {
                    return Some(RegisterId::f(i));
                }
            }
        }
        // ABI spellings.
        if let Some(pos) = INT_ABI_NAMES.iter().position(|&n| n == name) {
            return Some(RegisterId::x(pos as u8));
        }
        if let Some(pos) = FP_ABI_NAMES.iter().position(|&n| n == name) {
            return Some(RegisterId::f(pos as u8));
        }
        // `fp` is an alias for `s0`/`x8`.
        if name == "fp" {
            return Some(RegisterId::x(8));
        }
        None
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// ABI names of the integer registers, indexed by register number.
pub const INT_ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// ABI names of the floating-point registers, indexed by register number.
pub const FP_ABI_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

/// A 64-bit register value with data-type metadata (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegisterValue {
    /// Raw 64-bit contents.
    pub bits: u64,
    /// Type of the value last written, used for display and typed reads.
    pub data_type: DataType,
}

impl Default for RegisterValue {
    fn default() -> Self {
        RegisterValue { bits: 0, data_type: DataType::Int }
    }
}

impl RegisterValue {
    /// A zeroed integer register value.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Build from a typed value.
    pub fn from_typed(value: TypedValue) -> Self {
        RegisterValue { bits: value.bits(), data_type: value.data_type() }
    }

    /// View as a typed value.
    pub fn typed(self) -> TypedValue {
        TypedValue::from_bits(self.bits, self.data_type)
    }

    /// Signed 64-bit view (sign-extended from 32 bits for 32-bit types).
    pub fn as_i64(self) -> i64 {
        self.typed().as_i64()
    }

    /// Single-precision float view.
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.bits as u32)
    }

    /// Human-readable rendering that respects the stored data type — the GUI
    /// behaviour described in §III-B (show `'a'` instead of `97`).
    pub fn display_value(self) -> String {
        let mut out = String::new();
        self.write_display_value(&mut out).expect("writing to a String cannot fail");
        out
    }

    /// Write [`Self::display_value`] into an existing buffer — the
    /// allocation-free path used by the snapshot writer's reusable scratch.
    pub fn write_display_value(self, out: &mut impl fmt::Write) -> fmt::Result {
        match self.data_type {
            DataType::Int => write!(out, "{}", self.bits as u32 as i32),
            DataType::UInt => write!(out, "{}", self.bits as u32),
            DataType::Long => write!(out, "{}", self.bits as i64),
            DataType::ULong => write!(out, "{}", self.bits),
            DataType::Float => write!(out, "{}", f32::from_bits(self.bits as u32)),
            DataType::Double => write!(out, "{}", f64::from_bits(self.bits)),
            DataType::Char => {
                let c = (self.bits & 0xff) as u8 as char;
                if c.is_ascii_graphic() || c == ' ' {
                    write!(out, "'{c}'")
                } else {
                    write!(out, "0x{:02x}", self.bits & 0xff)
                }
            }
            DataType::Bool => out.write_str(if self.bits != 0 { "true" } else { "false" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_architectural_names() {
        assert_eq!(RegisterId::parse("x0"), Some(RegisterId::x(0)));
        assert_eq!(RegisterId::parse("x31"), Some(RegisterId::x(31)));
        assert_eq!(RegisterId::parse("f15"), Some(RegisterId::f(15)));
        assert_eq!(RegisterId::parse("x32"), None);
        assert_eq!(RegisterId::parse("y3"), None);
    }

    #[test]
    fn parse_abi_names() {
        assert_eq!(RegisterId::parse("zero"), Some(RegisterId::x(0)));
        assert_eq!(RegisterId::parse("ra"), Some(RegisterId::x(1)));
        assert_eq!(RegisterId::parse("sp"), Some(RegisterId::x(2)));
        assert_eq!(RegisterId::parse("a0"), Some(RegisterId::x(10)));
        assert_eq!(RegisterId::parse("t6"), Some(RegisterId::x(31)));
        assert_eq!(RegisterId::parse("fa0"), Some(RegisterId::f(10)));
        assert_eq!(RegisterId::parse("ft11"), Some(RegisterId::f(31)));
        assert_eq!(RegisterId::parse("fp"), Some(RegisterId::x(8)));
        assert_eq!(RegisterId::parse("s0"), Some(RegisterId::x(8)));
    }

    #[test]
    fn every_abi_name_round_trips() {
        for i in 0..32u8 {
            let r = RegisterId::x(i);
            assert_eq!(RegisterId::parse(r.abi_name()), Some(r), "int reg {i}");
            assert_eq!(RegisterId::parse(&r.arch_name()), Some(r));
            let r = RegisterId::f(i);
            assert_eq!(RegisterId::parse(r.abi_name()), Some(r), "fp reg {i}");
            assert_eq!(RegisterId::parse(&r.arch_name()), Some(r));
        }
    }

    #[test]
    fn zero_register_detection() {
        assert!(RegisterId::x(0).is_zero());
        assert!(!RegisterId::f(0).is_zero());
        assert!(!RegisterId::x(1).is_zero());
    }

    #[test]
    fn register_value_display_respects_type() {
        let v = RegisterValue { bits: (-5i32 as u32) as u64, data_type: DataType::Int };
        assert_eq!(v.display_value(), "-5");
        let v = RegisterValue { bits: 2.5f32.to_bits() as u64, data_type: DataType::Float };
        assert_eq!(v.display_value(), "2.5");
        let v = RegisterValue { bits: 97, data_type: DataType::Char };
        assert_eq!(v.display_value(), "'a'");
        let v = RegisterValue { bits: 1, data_type: DataType::Bool };
        assert_eq!(v.display_value(), "true");
    }

    #[test]
    fn register_value_typed_round_trip() {
        let tv = TypedValue::float(1.5);
        let rv = RegisterValue::from_typed(tv);
        assert_eq!(rv.as_f32(), 1.5);
        assert_eq!(rv.typed(), tv);
    }
}
