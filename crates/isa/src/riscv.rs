//! Built-in RV32IM+F (plus a D subset) instruction definitions.
//!
//! This is the Rust equivalent of the paper's instruction-definition JSON file
//! (Listing 1): each entry is an [`InstructionDescriptor`] with a postfix
//! semantics expression.  The table can be exported with
//! [`crate::InstructionSet::to_json`] and edited/extended by users.

use crate::descriptor::{ArgumentDescriptor as Arg, InstructionDescriptor, MemoryAccessDescriptor};
use crate::types::{DataType, FunctionalClass, InstructionType};

fn base(
    name: &str,
    itype: InstructionType,
    class: FunctionalClass,
    ext: &str,
) -> InstructionDescriptor {
    InstructionDescriptor {
        name: name.to_string(),
        instruction_type: itype,
        functional_class: class,
        arguments: Vec::new(),
        interpretable_as: String::new(),
        address: None,
        condition: None,
        target: None,
        memory: None,
        flops: 0,
        extension: ext.to_string(),
    }
}

/// R-type integer: `op rd, rs1, rs2`.
fn int_r(name: &str, op: &str, ext: &str) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::Arithmetic, FunctionalClass::Fx, ext);
    d.arguments = vec![Arg::int_reg_wb("rd"), Arg::int_reg("rs1"), Arg::int_reg("rs2")];
    d.interpretable_as = format!("\\rs1 \\rs2 {op} \\rd =");
    d
}

/// I-type integer: `op rd, rs1, imm`.
fn int_i(name: &str, op: &str, ext: &str) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::Arithmetic, FunctionalClass::Fx, ext);
    d.arguments = vec![Arg::int_reg_wb("rd"), Arg::int_reg("rs1"), Arg::imm("imm")];
    d.interpretable_as = format!("\\rs1 \\imm {op} \\rd =");
    d
}

/// Integer load: `op rd, imm(rs1)`.
fn load(name: &str, size: usize, sign_extend: bool, dt: DataType) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::LoadStore, FunctionalClass::Load, "I");
    d.arguments = vec![Arg::int_reg_wb("rd"), Arg::imm("imm"), Arg::int_reg("rs1")];
    d.address = Some("\\rs1 \\imm +".to_string());
    d.memory = Some(MemoryAccessDescriptor { size, sign_extend, is_store: false, data_type: dt });
    d
}

/// Integer store: `op rs2, imm(rs1)`.
fn store(name: &str, size: usize, dt: DataType) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::LoadStore, FunctionalClass::Store, "I");
    d.arguments = vec![Arg::int_reg("rs2"), Arg::imm("imm"), Arg::int_reg("rs1")];
    d.address = Some("\\rs1 \\imm +".to_string());
    d.memory =
        Some(MemoryAccessDescriptor { size, sign_extend: false, is_store: true, data_type: dt });
    d
}

/// Conditional branch: `op rs1, rs2, imm`.
fn branch(name: &str, cond: &str) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::JumpBranch, FunctionalClass::Branch, "I");
    d.arguments = vec![Arg::int_reg("rs1"), Arg::int_reg("rs2"), Arg::label("imm")];
    d.condition = Some(format!("\\rs1 \\rs2 {cond}"));
    d.target = Some("\\pc \\imm +".to_string());
    d
}

/// FP R-type: `op rd, rs1, rs2` (all FP registers).
fn fp_r(name: &str, op: &str, flops: u32, ext: &str, dt: DataType) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::Arithmetic, FunctionalClass::Fp, ext);
    let (mut rd, mut rs1, mut rs2) = (Arg::fp_reg_wb("rd"), Arg::fp_reg("rs1"), Arg::fp_reg("rs2"));
    rd.data_type = dt;
    rs1.data_type = dt;
    rs2.data_type = dt;
    d.arguments = vec![rd, rs1, rs2];
    d.interpretable_as = format!("\\rs1 \\rs2 {op} \\rd =");
    d.flops = flops;
    d
}

/// FP compare writing an integer register: `op rd, rs1, rs2`.
fn fp_cmp(name: &str, op: &str, ext: &str, dt: DataType) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::Arithmetic, FunctionalClass::Fp, ext);
    let (mut rs1, mut rs2) = (Arg::fp_reg("rs1"), Arg::fp_reg("rs2"));
    rs1.data_type = dt;
    rs2.data_type = dt;
    d.arguments = vec![Arg::int_reg_wb("rd"), rs1, rs2];
    d.interpretable_as = format!("\\rs1 \\rs2 {op} \\rd =");
    d
}

/// FP unary: `op rd, rs1`.
fn fp_unary(
    name: &str,
    expr: &str,
    flops: u32,
    ext: &str,
    rd_fp: bool,
    rs1_fp: bool,
    dt: DataType,
) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::Arithmetic, FunctionalClass::Fp, ext);
    let mut rd = if rd_fp { Arg::fp_reg_wb("rd") } else { Arg::int_reg_wb("rd") };
    let mut rs1 = if rs1_fp { Arg::fp_reg("rs1") } else { Arg::int_reg("rs1") };
    if rd_fp {
        rd.data_type = dt;
    }
    if rs1_fp {
        rs1.data_type = dt;
    }
    d.arguments = vec![rd, rs1];
    d.interpretable_as = expr.to_string();
    d.flops = flops;
    d
}

/// FP fused multiply-add family: `op rd, rs1, rs2, rs3`.
fn fp_fma(name: &str, expr: &str, ext: &str, dt: DataType) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::Arithmetic, FunctionalClass::Fp, ext);
    let mut args =
        vec![Arg::fp_reg_wb("rd"), Arg::fp_reg("rs1"), Arg::fp_reg("rs2"), Arg::fp_reg("rs3")];
    for a in &mut args {
        a.data_type = dt;
    }
    d.arguments = args;
    d.interpretable_as = expr.to_string();
    d.flops = 2;
    d
}

/// FP load: `op rd, imm(rs1)` with an FP destination.
fn fp_load(name: &str, size: usize, dt: DataType, ext: &str) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::LoadStore, FunctionalClass::Load, ext);
    let mut rd = Arg::fp_reg_wb("rd");
    rd.data_type = dt;
    d.arguments = vec![rd, Arg::imm("imm"), Arg::int_reg("rs1")];
    d.address = Some("\\rs1 \\imm +".to_string());
    d.memory =
        Some(MemoryAccessDescriptor { size, sign_extend: false, is_store: false, data_type: dt });
    d
}

/// FP store: `op rs2, imm(rs1)` with an FP source.
fn fp_store(name: &str, size: usize, dt: DataType, ext: &str) -> InstructionDescriptor {
    let mut d = base(name, InstructionType::LoadStore, FunctionalClass::Store, ext);
    let mut rs2 = Arg::fp_reg("rs2");
    rs2.data_type = dt;
    d.arguments = vec![rs2, Arg::imm("imm"), Arg::int_reg("rs1")];
    d.address = Some("\\rs1 \\imm +".to_string());
    d.memory =
        Some(MemoryAccessDescriptor { size, sign_extend: false, is_store: true, data_type: dt });
    d
}

/// Build the complete built-in instruction list.
pub fn base_instructions() -> Vec<InstructionDescriptor> {
    let mut v: Vec<InstructionDescriptor> = Vec::with_capacity(128);

    // ----------------------------------------------------------------- RV32I
    v.push(int_r("add", "+", "I"));
    v.push(int_r("sub", "-", "I"));
    v.push(int_r("and", "&", "I"));
    v.push(int_r("or", "|", "I"));
    v.push(int_r("xor", "^", "I"));
    v.push(int_r("sll", "<<", "I"));
    v.push(int_r("srl", ">>>", "I"));
    v.push(int_r("sra", ">>", "I"));
    v.push(int_r("slt", "<", "I"));
    v.push(int_r("sltu", "u<", "I"));

    v.push(int_i("addi", "+", "I"));
    v.push(int_i("andi", "&", "I"));
    v.push(int_i("ori", "|", "I"));
    v.push(int_i("xori", "^", "I"));
    v.push(int_i("slli", "<<", "I"));
    v.push(int_i("srli", ">>>", "I"));
    v.push(int_i("srai", ">>", "I"));
    v.push(int_i("slti", "<", "I"));
    v.push(int_i("sltiu", "u<", "I"));

    // lui / auipc take a 20-bit upper immediate.
    let mut lui = base("lui", InstructionType::Arithmetic, FunctionalClass::Fx, "I");
    lui.arguments = vec![Arg::int_reg_wb("rd"), Arg::imm("imm")];
    lui.interpretable_as = "\\imm 12 << \\rd =".to_string();
    v.push(lui);

    let mut auipc = base("auipc", InstructionType::Arithmetic, FunctionalClass::Fx, "I");
    auipc.arguments = vec![Arg::int_reg_wb("rd"), Arg::imm("imm")];
    auipc.interpretable_as = "\\pc \\imm 12 << + \\rd =".to_string();
    v.push(auipc);

    // Loads and stores.
    v.push(load("lw", 4, true, DataType::Int));
    v.push(load("lh", 2, true, DataType::Int));
    v.push(load("lb", 1, true, DataType::Char));
    v.push(load("lhu", 2, false, DataType::Int));
    v.push(load("lbu", 1, false, DataType::Char));
    v.push(store("sw", 4, DataType::Int));
    v.push(store("sh", 2, DataType::Int));
    v.push(store("sb", 1, DataType::Char));

    // Conditional branches.
    v.push(branch("beq", "=="));
    v.push(branch("bne", "!="));
    v.push(branch("blt", "<"));
    v.push(branch("bge", ">="));
    v.push(branch("bltu", "u<"));
    v.push(branch("bgeu", "u>="));

    // Unconditional jumps.
    let mut jal = base("jal", InstructionType::JumpBranch, FunctionalClass::Branch, "I");
    jal.arguments = vec![Arg::int_reg_wb("rd"), Arg::label("imm")];
    jal.interpretable_as = "\\pc 4 + \\rd =".to_string();
    jal.target = Some("\\pc \\imm +".to_string());
    v.push(jal);

    let mut jalr = base("jalr", InstructionType::JumpBranch, FunctionalClass::Branch, "I");
    jalr.arguments = vec![Arg::int_reg_wb("rd"), Arg::int_reg("rs1"), Arg::imm("imm")];
    jalr.interpretable_as = "\\pc 4 + \\rd =".to_string();
    jalr.target = Some("\\rs1 \\imm + -2 &".to_string());
    v.push(jalr);

    // ----------------------------------------------------------------- RV32M
    v.push(int_r("mul", "*", "M"));
    v.push(int_r("mulh", "mulh", "M"));
    v.push(int_r("mulhu", "mulhu", "M"));
    v.push(int_r("mulhsu", "mulhsu", "M"));
    v.push(int_r("div", "/", "M"));
    v.push(int_r("divu", "u/", "M"));
    v.push(int_r("rem", "%", "M"));
    v.push(int_r("remu", "u%", "M"));

    // ----------------------------------------------------------------- RV32F
    v.push(fp_load("flw", 4, DataType::Float, "F"));
    v.push(fp_store("fsw", 4, DataType::Float, "F"));
    v.push(fp_r("fadd.s", "f+", 1, "F", DataType::Float));
    v.push(fp_r("fsub.s", "f-", 1, "F", DataType::Float));
    v.push(fp_r("fmul.s", "f*", 1, "F", DataType::Float));
    v.push(fp_r("fdiv.s", "f/", 1, "F", DataType::Float));
    v.push(fp_r("fmin.s", "fmin", 1, "F", DataType::Float));
    v.push(fp_r("fmax.s", "fmax", 1, "F", DataType::Float));
    v.push(fp_r("fsgnj.s", "fsgnj", 0, "F", DataType::Float));
    v.push(fp_r("fsgnjn.s", "fsgnjn", 0, "F", DataType::Float));
    v.push(fp_r("fsgnjx.s", "fsgnjx", 0, "F", DataType::Float));
    v.push(fp_cmp("feq.s", "f==", "F", DataType::Float));
    v.push(fp_cmp("flt.s", "f<", "F", DataType::Float));
    v.push(fp_cmp("fle.s", "f<=", "F", DataType::Float));
    {
        let mut d = fp_unary("fsqrt.s", "\\rs1 fsqrt \\rd =", 1, "F", true, true, DataType::Float);
        d.flops = 1;
        v.push(d);
    }
    v.push(fp_unary("fcvt.s.w", "\\rs1 i2f \\rd =", 0, "F", true, false, DataType::Float));
    v.push(fp_unary("fcvt.s.wu", "\\rs1 u2f \\rd =", 0, "F", true, false, DataType::Float));
    v.push(fp_unary("fcvt.w.s", "\\rs1 f2i \\rd =", 0, "F", false, true, DataType::Float));
    v.push(fp_unary("fcvt.wu.s", "\\rs1 f2u \\rd =", 0, "F", false, true, DataType::Float));
    v.push(fp_unary("fmv.x.w", "\\rs1 f2bits \\rd =", 0, "F", false, true, DataType::Float));
    v.push(fp_unary("fmv.w.x", "\\rs1 bits2f \\rd =", 0, "F", true, false, DataType::Float));
    v.push(fp_fma("fmadd.s", "\\rs1 \\rs2 f* \\rs3 f+ \\rd =", "F", DataType::Float));
    v.push(fp_fma("fmsub.s", "\\rs1 \\rs2 f* \\rs3 f- \\rd =", "F", DataType::Float));
    v.push(fp_fma("fnmadd.s", "\\rs1 \\rs2 f* fneg \\rs3 f- \\rd =", "F", DataType::Float));
    v.push(fp_fma("fnmsub.s", "\\rs1 \\rs2 f* fneg \\rs3 f+ \\rd =", "F", DataType::Float));

    // ------------------------------------------------- RV32D (common subset)
    v.push(fp_load("fld", 8, DataType::Double, "D"));
    v.push(fp_store("fsd", 8, DataType::Double, "D"));
    v.push(fp_r("fadd.d", "d+", 1, "D", DataType::Double));
    v.push(fp_r("fsub.d", "d-", 1, "D", DataType::Double));
    v.push(fp_r("fmul.d", "d*", 1, "D", DataType::Double));
    v.push(fp_r("fdiv.d", "d/", 1, "D", DataType::Double));
    v.push(fp_r("fmin.d", "dmin", 1, "D", DataType::Double));
    v.push(fp_r("fmax.d", "dmax", 1, "D", DataType::Double));
    v.push(fp_cmp("feq.d", "d==", "D", DataType::Double));
    v.push(fp_cmp("flt.d", "d<", "D", DataType::Double));
    v.push(fp_cmp("fle.d", "d<=", "D", DataType::Double));
    {
        let mut d = fp_unary("fsqrt.d", "\\rs1 dsqrt \\rd =", 1, "D", true, true, DataType::Double);
        d.flops = 1;
        v.push(d);
    }
    v.push(fp_unary("fcvt.d.w", "\\rs1 i2d \\rd =", 0, "D", true, false, DataType::Double));
    v.push(fp_unary("fcvt.w.d", "\\rs1 d2i \\rd =", 0, "D", false, true, DataType::Double));
    v.push(fp_unary("fcvt.d.s", "\\rs1 f2d \\rd =", 0, "D", true, true, DataType::Double));
    v.push(fp_unary("fcvt.s.d", "\\rs1 d2f \\rd =", 0, "D", true, true, DataType::Double));
    v.push(fp_fma("fmadd.d", "\\rs1 \\rs2 d* \\rs3 d+ \\rd =", "D", DataType::Double));
    v.push(fp_fma("fmsub.d", "\\rs1 \\rs2 d* \\rs3 d- \\rd =", "D", DataType::Double));

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::Evaluator;
    use crate::value::TypedValue;

    fn isa() -> crate::InstructionSet {
        crate::InstructionSet::rv32imf()
    }

    fn exec_rr(name: &str, a: i32, b: i32) -> i64 {
        let isa = isa();
        let d = isa.get(name).unwrap();
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::int(a));
        e.bind("rs2", TypedValue::int(b));
        e.bind("rd", TypedValue::int(0));
        let out = e.run(&d.interpretable_as).unwrap();
        out.assignments[0].1.as_i64()
    }

    #[test]
    fn no_duplicate_mnemonics() {
        let list = base_instructions();
        let mut names: Vec<&str> = list.iter().map(|d| d.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate instruction names in builtin table");
    }

    #[test]
    fn every_descriptor_is_internally_consistent() {
        for d in base_instructions() {
            // Memory instructions must have an address expression and vice versa.
            assert_eq!(d.memory.is_some(), d.address.is_some(), "{}", d.name);
            // Branch-class instructions must have a target.
            if d.functional_class == crate::FunctionalClass::Branch {
                assert!(d.target.is_some(), "{} missing target", d.name);
            } else {
                assert!(d.target.is_none(), "{} has unexpected target", d.name);
                assert!(d.condition.is_none(), "{} has unexpected condition", d.name);
            }
            // Stores never write back; loads and arithmetic do.
            if d.is_store() {
                assert_eq!(d.write_back_args().count(), 0, "{} store writes back", d.name);
            }
            if d.is_load() {
                assert_eq!(d.write_back_args().count(), 1, "{} load needs one dest", d.name);
            }
            assert!(!d.extension.is_empty(), "{} missing extension tag", d.name);
        }
    }

    #[test]
    fn integer_alu_semantics() {
        assert_eq!(exec_rr("add", 2, 3), 5);
        assert_eq!(exec_rr("sub", 2, 3), -1);
        assert_eq!(exec_rr("and", 0b1100, 0b1010), 0b1000);
        assert_eq!(exec_rr("or", 0b1100, 0b1010), 0b1110);
        assert_eq!(exec_rr("xor", 0b1100, 0b1010), 0b0110);
        assert_eq!(exec_rr("sll", 1, 4), 16);
        assert_eq!(exec_rr("srl", -16, 2), 0x3fff_fffc);
        assert_eq!(exec_rr("sra", -16, 2), -4);
        assert_eq!(exec_rr("slt", -1, 1), 1);
        assert_eq!(exec_rr("sltu", -1, 1), 0);
        assert_eq!(exec_rr("mul", -3, 7), -21);
        assert_eq!(exec_rr("div", 7, 2), 3);
        assert_eq!(exec_rr("rem", 7, 2), 1);
        assert_eq!(exec_rr("divu", -1, 2), 0x7fff_ffff);
    }

    #[test]
    fn lui_and_auipc_shift_immediate() {
        let isa = isa();
        let mut e = Evaluator::new();
        e.bind("imm", TypedValue::int(0x12345));
        e.bind("rd", TypedValue::int(0));
        let out = e.run(&isa.get("lui").unwrap().interpretable_as).unwrap();
        assert_eq!(out.assignments[0].1.as_u32(), 0x1234_5000);

        let mut e = Evaluator::new();
        e.bind("imm", TypedValue::int(1));
        e.bind("pc", TypedValue::int(0x100));
        e.bind("rd", TypedValue::int(0));
        let out = e.run(&isa.get("auipc").unwrap().interpretable_as).unwrap();
        assert_eq!(out.assignments[0].1.as_u32(), 0x1100);
    }

    #[test]
    fn jalr_clears_low_bit_of_target() {
        let isa = isa();
        let d = isa.get("jalr").unwrap();
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::int(0x103));
        e.bind("imm", TypedValue::int(0));
        e.bind("pc", TypedValue::int(0));
        e.bind("rd", TypedValue::int(0));
        let out = e.run(d.target.as_ref().unwrap()).unwrap();
        assert_eq!(out.result.unwrap().as_u32(), 0x102);
    }

    #[test]
    fn branch_conditions() {
        let isa = isa();
        let cases = [
            ("beq", 5, 5, true),
            ("beq", 5, 6, false),
            ("bne", 5, 6, true),
            ("blt", -1, 0, true),
            ("bge", -1, 0, false),
            ("bltu", -1, 0, false),
            ("bgeu", -1, 0, true),
        ];
        for (name, a, b, taken) in cases {
            let d = isa.get(name).unwrap();
            let mut e = Evaluator::new();
            e.bind("rs1", TypedValue::int(a));
            e.bind("rs2", TypedValue::int(b));
            let out = e.run(d.condition.as_ref().unwrap()).unwrap();
            assert_eq!(out.result.unwrap().is_true(), taken, "{name} {a} {b}");
        }
    }

    #[test]
    fn fp_fma_semantics() {
        let isa = isa();
        let d = isa.get("fmadd.s").unwrap();
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::float(2.0));
        e.bind("rs2", TypedValue::float(3.0));
        e.bind("rs3", TypedValue::float(1.0));
        e.bind("rd", TypedValue::float(0.0));
        let out = e.run(&d.interpretable_as).unwrap();
        assert_eq!(out.assignments[0].1.as_f32(), 7.0);
        assert_eq!(d.flops, 2);

        let d = isa.get("fnmadd.s").unwrap();
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::float(2.0));
        e.bind("rs2", TypedValue::float(3.0));
        e.bind("rs3", TypedValue::float(1.0));
        e.bind("rd", TypedValue::float(0.0));
        let out = e.run(&d.interpretable_as).unwrap();
        assert_eq!(out.assignments[0].1.as_f32(), -7.0);
    }

    #[test]
    fn double_precision_subset() {
        let isa = isa();
        let d = isa.get("fadd.d").unwrap();
        let mut e = Evaluator::new();
        e.bind("rs1", TypedValue::double(1.25));
        e.bind("rs2", TypedValue::double(2.5));
        e.bind("rd", TypedValue::double(0.0));
        let out = e.run(&d.interpretable_as).unwrap();
        assert_eq!(out.assignments[0].1.as_f64(), 3.75);
        assert_eq!(isa.get("fld").unwrap().memory.unwrap().size, 8);
    }

    #[test]
    fn memory_access_shapes() {
        let isa = isa();
        assert_eq!(isa.get("lb").unwrap().memory.unwrap().size, 1);
        assert!(isa.get("lb").unwrap().memory.unwrap().sign_extend);
        assert!(!isa.get("lbu").unwrap().memory.unwrap().sign_extend);
        assert_eq!(isa.get("sh").unwrap().memory.unwrap().size, 2);
        assert!(isa.get("sh").unwrap().memory.unwrap().is_store);
        assert_eq!(isa.get("flw").unwrap().memory.unwrap().data_type, DataType::Float);
    }
}
