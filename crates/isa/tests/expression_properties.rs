//! Property-based tests of the typed value model and the postfix expression
//! interpreter: the interpreter must agree with host arithmetic on RV32
//! semantics and must never panic, whatever it is fed.

use proptest::prelude::*;
use rvsim_isa::{expression::Evaluator, value, InstructionSet, TypedValue};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Integer binary operators match wrapping 32-bit host arithmetic.
    #[test]
    fn prop_integer_ops_match_host(a in any::<i32>(), b in any::<i32>()) {
        let ta = TypedValue::int(a);
        let tb = TypedValue::int(b);
        prop_assert_eq!(value::binary_op("+", ta, tb).unwrap().as_i64(), a.wrapping_add(b) as i64);
        prop_assert_eq!(value::binary_op("-", ta, tb).unwrap().as_i64(), a.wrapping_sub(b) as i64);
        prop_assert_eq!(value::binary_op("*", ta, tb).unwrap().as_i64(), a.wrapping_mul(b) as i64);
        prop_assert_eq!(value::binary_op("&", ta, tb).unwrap().as_i64(), (a & b) as i64);
        prop_assert_eq!(value::binary_op("|", ta, tb).unwrap().as_i64(), (a | b) as i64);
        prop_assert_eq!(value::binary_op("^", ta, tb).unwrap().as_i64(), (a ^ b) as i64);
        prop_assert_eq!(value::binary_op("<", ta, tb).unwrap().as_i64(), (a < b) as i64);
        prop_assert_eq!(
            value::binary_op("u<", ta, tb).unwrap().as_i64(),
            ((a as u32) < (b as u32)) as i64
        );
        prop_assert_eq!(
            value::binary_op("<<", ta, tb).unwrap().as_i64(),
            (a.wrapping_shl(b as u32 & 31)) as i64
        );
        prop_assert_eq!(
            value::binary_op(">>", ta, tb).unwrap().as_i64(),
            (a.wrapping_shr(b as u32 & 31)) as i64
        );
    }

    /// Division and remainder follow the RISC-V special cases and otherwise
    /// match the host.
    #[test]
    fn prop_division_matches_riscv(a in any::<i32>(), b in any::<i32>()) {
        let ta = TypedValue::int(a);
        let tb = TypedValue::int(b);
        let div = value::binary_op("/", ta, tb);
        let rem = value::binary_op("%", ta, tb);
        if b == 0 {
            prop_assert!(div.is_err());
            prop_assert!(rem.is_err());
        } else if a == i32::MIN && b == -1 {
            prop_assert_eq!(div.unwrap().as_i64(), i32::MIN as i64);
            prop_assert_eq!(rem.unwrap().as_i64(), 0);
        } else {
            prop_assert_eq!(div.unwrap().as_i64(), (a / b) as i64);
            prop_assert_eq!(rem.unwrap().as_i64(), (a % b) as i64);
        }
    }

    /// The `add` descriptor's semantics expression agrees with host addition
    /// for every operand pair (the Listing-1 round trip).
    #[test]
    fn prop_add_descriptor_semantics(a in any::<i32>(), b in any::<i32>()) {
        let isa = InstructionSet::rv32imf();
        let add = isa.get("add").unwrap();
        let mut evaluator = Evaluator::new();
        evaluator.bind("rs1", TypedValue::int(a));
        evaluator.bind("rs2", TypedValue::int(b));
        evaluator.bind("rd", TypedValue::int(0));
        let out = evaluator.run(&add.interpretable_as).unwrap();
        prop_assert_eq!(out.assignments[0].1.as_i64(), a.wrapping_add(b) as i64);
    }

    /// Float operations match host single-precision arithmetic bit for bit.
    #[test]
    fn prop_float_ops_match_host(a in -1e6f32..1e6, b in -1e6f32..1e6) {
        let ta = TypedValue::float(a);
        let tb = TypedValue::float(b);
        prop_assert_eq!(value::binary_op("f+", ta, tb).unwrap().as_f32().to_bits(), (a + b).to_bits());
        prop_assert_eq!(value::binary_op("f*", ta, tb).unwrap().as_f32().to_bits(), (a * b).to_bits());
        prop_assert_eq!(value::binary_op("f<", ta, tb).unwrap().as_i64(), (a < b) as i64);
        prop_assert_eq!(value::unary_op("fneg", ta).unwrap().as_f32().to_bits(), (-a).to_bits());
    }

    /// The evaluator never panics on arbitrary token soup — it either
    /// produces a value or an interpreter error.
    #[test]
    fn prop_evaluator_never_panics(expr in "[a-z0-9+\\-*/\\\\ =<>!%&|^]{0,40}") {
        let mut evaluator = Evaluator::new();
        evaluator.bind("rs1", TypedValue::int(1));
        evaluator.bind("rs2", TypedValue::int(2));
        let _ = evaluator.run(&expr);
    }

    /// Register-value display never panics and respects the tag for integers.
    #[test]
    fn prop_typed_value_display(v in any::<i32>()) {
        let t = TypedValue::int(v);
        prop_assert_eq!(t.display(), v.to_string());
        prop_assert_eq!(t.as_u32(), v as u32);
    }
}
