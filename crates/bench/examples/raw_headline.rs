//! Quick probe of the headline cached-GetState cell: requests/s of
//! `handle_raw(GetState)` on a warmed compressed session, printed once per
//! run so instrumentation overhead can be A/B-measured without the full
//! server benchmark.
use std::time::Instant;

fn main() {
    let (server, session) = rvsim_bench::raw_bench_server(true);
    let state_req = serde_json::to_vec(&rvsim_server::Request::GetState { session }).unwrap();
    for round in 0..5 {
        let start = Instant::now();
        let mut requests = 0u64;
        loop {
            server.handle_raw(&state_req);
            requests += 1;
            if requests.is_multiple_of(1024) && start.elapsed().as_secs_f64() >= 0.5 {
                break;
            }
        }
        let rps = requests as f64 / start.elapsed().as_secs_f64();
        println!("round {round}: {rps:.0} req/s");
    }
}
