//! Shared workloads and helpers for the benchmark harness.
//!
//! Every bench target in `benches/` regenerates one artefact of the paper's
//! evaluation (see DESIGN.md §2 for the experiment index).  The helpers here
//! provide the sample programs, server/scenario constructors and the
//! table-style printing used across the benches so that each bench file
//! focuses on its experiment.

#![warn(missing_docs)]

use rvsim_core::{ArchitectureConfig, Simulator};
use rvsim_server::{DeploymentConfig, DeploymentMode, SimulationServer, ThreadedServer};

/// Arithmetic loop used as the "program 1" interactive workload.
pub fn program_arithmetic() -> String {
    rvsim_loadgen::sample_program_loop()
}

/// Memory-heavy workload ("program 2").
pub fn program_memory() -> String {
    rvsim_loadgen::sample_program_memory()
}

/// A mid-size mixed kernel used for snapshot/JSON measurements: keeps the
/// pipeline full so snapshots contain plenty of in-flight state.
pub fn program_mixed() -> String {
    "
data:
    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
main:
    la   t0, data
    li   t1, 16
    li   a0, 0
    li   a1, 1
loop:
    lw   t2, 0(t0)
    mul  t3, t2, a1
    add  a0, a0, t3
    addi a1, a1, 1
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
"
    .to_string()
}

/// A floating-point kernel (dot product) for FLOP-heavy sweeps.
pub fn program_float() -> String {
    "
a:
    .float 1.5, 2.0, 0.5, 4.0, 3.25, 0.75, 2.5, 1.0
b:
    .float 2.0, 3.0, 8.0, 0.25, 1.0, 4.0, 0.5, 2.0
main:
    la   t0, a
    la   t1, b
    li   t2, 8
    fmv.w.x fa0, x0
loop:
    flw  ft0, 0(t0)
    flw  ft1, 0(t1)
    fmadd.s fa0, ft0, ft1, fa0
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, loop
    fcvt.w.s a0, fa0
    ret
"
    .to_string()
}

/// Build a simulator for `program` on `config`, panicking on any error.
pub fn simulator(program: &str, config: &ArchitectureConfig) -> Simulator {
    Simulator::from_assembly(program, config).expect("benchmark program assembles")
}

/// Run `program` to completion on `config` and return (cycles, IPC).
pub fn run_to_completion(program: &str, config: &ArchitectureConfig) -> (u64, f64) {
    let mut sim = simulator(program, config);
    sim.run(10_000_000).expect("benchmark program runs");
    let stats = sim.statistics();
    (stats.cycles, stats.ipc())
}

/// Start a threaded server in the given deployment mode.
pub fn start_server(mode: DeploymentMode, compress: bool, workers: usize) -> ThreadedServer {
    ThreadedServer::start(SimulationServer::new(DeploymentConfig {
        mode,
        compress_responses: compress,
        worker_threads: workers,
    }))
}

/// Print a paper-style table header once per bench run.
pub fn print_header(title: &str, columns: &str) {
    println!();
    println!("=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().max(40)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmark_programs_terminate() {
        let config = ArchitectureConfig::default();
        for program in [program_arithmetic(), program_memory(), program_mixed(), program_float()] {
            let (cycles, ipc) = run_to_completion(&program, &config);
            assert!(cycles > 10);
            assert!(ipc > 0.0);
        }
    }

    #[test]
    fn server_helper_starts_and_stops() {
        let server = start_server(DeploymentMode::Direct, true, 2);
        assert_eq!(server.server().session_count(), 0);
        server.shutdown();
    }
}
