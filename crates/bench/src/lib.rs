//! Shared workloads and helpers for the benchmark harness.
//!
//! Every bench target in `benches/` regenerates one artefact of the paper's
//! evaluation (see DESIGN.md §2 for the experiment index).  The helpers here
//! provide the sample programs, server/scenario constructors and the
//! table-style printing used across the benches so that each bench file
//! focuses on its experiment.

#![warn(missing_docs)]

use rvsim_core::{ArchitectureConfig, Simulator};
use rvsim_mem::{ArrayFill, MemoryArray, MemorySettings, ScalarType};
use rvsim_server::{DeploymentConfig, DeploymentMode, SimulationServer, ThreadedServer};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Arithmetic loop used as the "program 1" interactive workload.
pub fn program_arithmetic() -> String {
    rvsim_loadgen::sample_program_loop()
}

/// Memory-heavy workload ("program 2").
pub fn program_memory() -> String {
    rvsim_loadgen::sample_program_memory()
}

/// A mid-size mixed kernel used for snapshot/JSON measurements: keeps the
/// pipeline full so snapshots contain plenty of in-flight state.
pub fn program_mixed() -> String {
    "
data:
    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
main:
    la   t0, data
    li   t1, 16
    li   a0, 0
    li   a1, 1
loop:
    lw   t2, 0(t0)
    mul  t3, t2, a1
    add  a0, a0, t3
    addi a1, a1, 1
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
"
    .to_string()
}

/// A floating-point kernel (dot product) for FLOP-heavy sweeps.
pub fn program_float() -> String {
    "
a:
    .float 1.5, 2.0, 0.5, 4.0, 3.25, 0.75, 2.5, 1.0
b:
    .float 2.0, 3.0, 8.0, 0.25, 1.0, 4.0, 0.5, 2.0
main:
    la   t0, a
    la   t1, b
    li   t2, 8
    fmv.w.x fa0, x0
loop:
    flw  ft0, 0(t0)
    flw  ft1, 0(t1)
    fmadd.s fa0, ft0, ft1, fa0
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, loop
    fcvt.w.s a0, fa0
    ret
"
    .to_string()
}

/// Build a simulator for `program` on `config`, panicking on any error.
pub fn simulator(program: &str, config: &ArchitectureConfig) -> Simulator {
    Simulator::from_assembly(program, config).expect("benchmark program assembles")
}

/// Run `program` to completion on `config` and return (cycles, IPC).
pub fn run_to_completion(program: &str, config: &ArchitectureConfig) -> (u64, f64) {
    let mut sim = simulator(program, config);
    sim.run(10_000_000).expect("benchmark program runs");
    let stats = sim.statistics();
    (stats.cycles, stats.ipc())
}

/// Start a threaded server in the given deployment mode.
pub fn start_server(mode: DeploymentMode, compress: bool, workers: usize) -> ThreadedServer {
    ThreadedServer::start(SimulationServer::new(DeploymentConfig {
        mode,
        compress_responses: compress,
        worker_threads: workers,
        idle_session_ttl_seconds: None,
    }))
}

// ---------------------------------------------------------------------------
// Pipeline-throughput benchmark harness (retired instructions per host second)
// ---------------------------------------------------------------------------

/// One benchmark program plus the memory arrays it expects.
pub struct Workload {
    /// Short display name ("quicksort", "arithmetic", …).
    pub name: &'static str,
    /// Assembly source (already compiled for C workloads).
    pub assembly: String,
    /// Memory Settings arrays referenced by the program.
    pub memory: MemorySettings,
}

/// Recursive quicksort over a 32-element array, compiled from the same C
/// source the paper uses for validation (§IV).  Returns the assembly and the
/// unsorted input array as a Memory Settings workload.
pub fn workload_quicksort() -> Workload {
    const QUICKSORT_C: &str = r#"
extern int data[];

void swap(int a[], int i, int j) {
    int t = a[i];
    a[i] = a[j];
    a[j] = t;
}

int partition(int a[], int lo, int hi) {
    int pivot = a[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j++) {
        if (a[j] <= pivot) {
            i++;
            swap(a, i, j);
        }
    }
    swap(a, i + 1, hi);
    return i + 1;
}

void quicksort(int a[], int lo, int hi) {
    if (lo < hi) {
        int p = partition(a, lo, hi);
        quicksort(a, lo, p - 1);
        quicksort(a, p + 1, hi);
    }
}

int main(void) {
    quicksort(data, 0, 31);
    int sum = 0;
    for (int i = 0; i < 32; i++) {
        sum += data[i] * (i + 1);
    }
    return sum;
}
"#;
    let values: Vec<f64> = vec![
        93.0, 7.0, 55.0, 12.0, 88.0, 3.0, 41.0, 67.0, 25.0, 99.0, 4.0, 73.0, 18.0, 62.0, 31.0,
        80.0, 9.0, 46.0, 58.0, 2.0, 77.0, 36.0, 14.0, 91.0, 28.0, 65.0, 50.0, 6.0, 84.0, 21.0,
        70.0, 39.0,
    ];
    let mut memory = MemorySettings::new();
    memory.add(MemoryArray {
        name: "data".to_string(),
        element: ScalarType::Word,
        alignment: 16,
        fill: ArrayFill::Values(values),
    });
    let output =
        rvsim_cc::compile(QUICKSORT_C, rvsim_cc::OptLevel::O2).expect("quicksort compiles");
    Workload { name: "quicksort", assembly: output.assembly, memory }
}

/// The benchmark suite measured by `pipeline_throughput` and
/// `rvsim-cli bench`: quicksort plus the paper's sample programs.
pub fn pipeline_workloads() -> Vec<Workload> {
    let plain = |name, assembly| Workload { name, assembly, memory: MemorySettings::new() };
    vec![
        workload_quicksort(),
        plain("arithmetic", program_arithmetic()),
        plain("memory", program_memory()),
        plain("mixed", program_mixed()),
        plain("float", program_float()),
    ]
}

/// The processor presets the throughput benchmark sweeps: single-issue,
/// the default 2-wide machine and the aggressive 4-wide machine.
pub fn pipeline_bench_configs() -> Vec<ArchitectureConfig> {
    vec![ArchitectureConfig::scalar(), ArchitectureConfig::default(), ArchitectureConfig::wide()]
}

/// One measured (workload, configuration) cell of the pipeline-throughput
/// benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSample {
    /// Workload name.
    pub workload: String,
    /// Architecture configuration name.
    pub config: String,
    /// Fetch width of the configuration (1 / 2 / 4).
    pub fetch_width: usize,
    /// Instructions committed by one complete run of the program.
    pub committed_per_run: u64,
    /// Simulated cycles of one complete run.
    pub cycles_per_run: u64,
    /// Complete runs executed during the measurement window.
    pub runs: u64,
    /// Host wall-clock seconds spent simulating.
    pub wall_seconds: f64,
    /// Retired (committed) instructions per host second — the headline metric.
    pub retired_per_second: f64,
    /// Simulated cycles per host second.
    pub cycles_per_second: f64,
    /// Instructions per cycle of the simulated machine (sanity statistic).
    pub ipc: f64,
}

/// Measure retired-instructions-per-host-second for one workload on one
/// configuration.  The program is run to completion repeatedly (via
/// [`Simulator::reset`]) until `min_wall_seconds` of measurement have
/// accumulated; at least one run always happens.
pub fn measure_pipeline(
    workload: &Workload,
    config: &ArchitectureConfig,
    min_wall_seconds: f64,
) -> PipelineSample {
    let mut sim =
        Simulator::from_assembly_with_memory(&workload.assembly, config, workload.memory.clone())
            .expect("benchmark workload assembles");

    // Warm-up run: validates termination and fills caches/allocations.
    let warm = sim.run(50_000_000).expect("benchmark workload runs");
    assert!(
        !matches!(warm.halt, rvsim_core::HaltReason::MaxCyclesReached),
        "workload {} did not terminate",
        workload.name
    );
    let stats = sim.statistics();
    let (committed_per_run, cycles_per_run) = (stats.committed, stats.cycles);

    let mut runs = 0u64;
    let start = Instant::now();
    loop {
        sim.reset();
        sim.run(50_000_000).expect("benchmark workload runs");
        runs += 1;
        if start.elapsed().as_secs_f64() >= min_wall_seconds {
            break;
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let retired = committed_per_run * runs;
    PipelineSample {
        workload: workload.name.to_string(),
        config: config.name.clone(),
        fetch_width: config.buffers.fetch_width,
        committed_per_run,
        cycles_per_run,
        runs,
        wall_seconds,
        retired_per_second: retired as f64 / wall_seconds,
        cycles_per_second: (cycles_per_run * runs) as f64 / wall_seconds,
        ipc: committed_per_run as f64 / cycles_per_run as f64,
    }
}

/// Run the full pipeline-throughput matrix (workloads × configurations).
pub fn run_pipeline_bench(min_wall_seconds: f64) -> Vec<PipelineSample> {
    let mut samples = Vec::new();
    for workload in pipeline_workloads() {
        for config in pipeline_bench_configs() {
            samples.push(measure_pipeline(&workload, &config, min_wall_seconds));
        }
    }
    samples
}

// ---------------------------------------------------------------------------
// Server-throughput benchmark harness (the paper's request-path measurements)
// ---------------------------------------------------------------------------

/// Long-running mixed workload for server-side request benchmarks.  The loop
/// count is large enough that a session never halts within a measurement
/// window, so every `Step` advances the cycle counter and every `GetState`
/// captures a pipeline with real in-flight state (ROB entries, renames,
/// cache lines).
pub fn program_server() -> String {
    "
data:
    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
main:
    la   t0, data
    li   t1, 4000000
    li   a0, 0
    li   a1, 1
loop:
    lw   t2, 0(t0)
    mul  t3, t2, a1
    add  a0, a0, t3
    sw   a0, 32(t0)
    addi a1, a1, 1
    andi t4, a1, 60
    add  t0, t0, t4
    sub  t0, t0, t4
    addi t1, t1, -1
    bnez t1, loop
    ret
"
    .to_string()
}

/// One measured raw-request scenario (server-side work only, no worker pool).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawRequestSample {
    /// Scenario name: `get_state` (repeated snapshot fetch of an unchanged
    /// session — the GUI's refresh pattern) or `step_state` (step one cycle,
    /// then fetch — the interactive stepping pattern; every fetch captures a
    /// changed machine).
    pub scenario: String,
    /// Whether response compression was enabled.
    pub compressed: bool,
    /// `GetState` requests completed in the measurement window.
    pub requests: u64,
    /// Wall-clock seconds of the measurement window.  For `step_state` this
    /// includes the untimed `Step` request preceding each fetch, so the
    /// derived rate is the sustained step+fetch interaction rate — only the
    /// `get_state` scenario measures pure serve throughput.
    pub wall_seconds: f64,
    /// `GetState` requests completed per wall-clock second of the scenario
    /// loop (see [`Self::wall_seconds`] for what the window includes) — the
    /// headline metric.
    pub requests_per_second: f64,
    /// Median `GetState` latency in microseconds (the fetch alone is timed,
    /// in every scenario).
    pub p50_us: f64,
    /// 90th-percentile `GetState` latency in microseconds.
    pub p90_us: f64,
    /// Encoded response payload size in bytes (last response).
    pub payload_bytes: u64,
}

/// One load-generator row (threaded server, paper scenario).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerLoadSample {
    /// Concurrent simulated users.
    pub users: usize,
    /// Whether response compression was enabled.
    pub compressed: bool,
    /// Snapshot fetch mode: `full` (`GetState` every step) or `delta`
    /// (`GetStateDelta` against the previously seen cycle).
    pub mode: String,
    /// The Table-I-style report.
    pub report: rvsim_loadgen::LoadTestReport,
}

/// Complete server-throughput report (`BENCH_server.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerBenchReport {
    /// Raw request-path samples.
    pub raw: Vec<RawRequestSample>,
    /// Load-generator samples (in-process transport).
    pub load: Vec<ServerLoadSample>,
    /// Load-generator samples over the real TCP/HTTP front end
    /// (`rvsim-net`, loopback).  Empty when the environment forbids
    /// loopback sockets — the in-process numbers above are unaffected.
    #[serde(default)]
    pub tcp: Vec<ServerLoadSample>,
    /// High-connection sweep: the same aggregate request rate paced over
    /// growing numbers of keep-alive connections (the event-loop front
    /// end's latency-vs-connections curve).  Populated by
    /// `rvsim-cli bench --server --high-connections`; empty otherwise.
    #[serde(default)]
    pub high_connection: Vec<rvsim_loadgen::HighConnectionReport>,
    /// Multi-node scale-out: aggregate cached-`GetState` throughput through
    /// the router tier over growing backend fleets, plus a drain-under-load
    /// measurement.  Populated by `rvsim-cli bench --server --multi-node`;
    /// `None` otherwise (and when loopback is unavailable).
    #[serde(default)]
    pub multi_node: Option<MultiNodeSection>,
    /// Crash-durability measurement: a backend is killed under stepping
    /// load and its checkpointed sessions fail over to the survivor.
    /// Populated by `rvsim-cli bench --server --durability`; `None`
    /// otherwise (and when loopback is unavailable).
    #[serde(default)]
    pub durability: Option<DurabilitySection>,
    /// Observability overhead: measured cost of the tracing primitives on
    /// the request hot path, plus the headline before/after check against
    /// the previously committed report.
    #[serde(default)]
    pub observability: Option<ObservabilitySection>,
}

impl ServerBenchReport {
    /// Requests/s of the headline cell (`get_state`, compressed), if present.
    pub fn headline_get_state_rps(&self) -> Option<f64> {
        self.raw
            .iter()
            .find(|s| s.scenario == "get_state" && s.compressed)
            .map(|s| s.requests_per_second)
    }
}

/// Knobs of the server benchmark.
#[derive(Debug, Clone)]
pub struct ServerBenchOptions {
    /// Minimum measurement window per raw cell, in seconds.
    pub min_seconds: f64,
    /// Load-generator time scale (1.0 = paper timing).
    pub time_scale: f64,
    /// User counts the load generator sweeps.
    pub users: Vec<usize>,
}

impl Default for ServerBenchOptions {
    fn default() -> Self {
        ServerBenchOptions { min_seconds: 0.5, time_scale: 0.05, users: vec![1, 8, 32] }
    }
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Create a direct (pool-less) server with one warmed-up session on the
/// server workload and return both.
pub fn raw_bench_server(compress: bool) -> (SimulationServer, u64) {
    let server = SimulationServer::new(DeploymentConfig {
        mode: DeploymentMode::Direct,
        compress_responses: compress,
        worker_threads: 1,
        idle_session_ttl_seconds: None,
    });
    let create = serde_json::to_vec(&rvsim_server::Request::CreateSession {
        program: program_server(),
        architecture: None,
        entry: None,
        session: None,
    })
    .expect("request serializes");
    let payload = server.handle_raw(&create);
    let response = SimulationServer::decode_response(&payload).expect("create decodes");
    let session = match response {
        rvsim_server::Response::SessionCreated { session } => session,
        other => panic!("unexpected create response {other:?}"),
    };
    // Warm the pipeline so snapshots contain real in-flight state.
    let step = serde_json::to_vec(&rvsim_server::Request::Step { session, cycles: 64 }).unwrap();
    server.handle_raw(&step);
    (server, session)
}

fn measure_raw(scenario: &str, compress: bool, min_seconds: f64) -> RawRequestSample {
    let (server, session) = raw_bench_server(compress);
    let state_req = serde_json::to_vec(&rvsim_server::Request::GetState { session }).unwrap();
    let step_req = serde_json::to_vec(&rvsim_server::Request::Step { session, cycles: 1 }).unwrap();

    let mut latencies_us: Vec<f64> = Vec::new();
    let start = Instant::now();
    loop {
        if scenario == "step_state" {
            server.handle_raw(&step_req);
        }
        let t0 = Instant::now();
        server.handle_raw(&state_req);
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        if start.elapsed().as_secs_f64() >= min_seconds {
            break;
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    // Representative payload size, measured outside the timing window.
    let payload_bytes = server.handle_raw(&state_req).len() as u64;
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let requests = latencies_us.len() as u64;
    RawRequestSample {
        scenario: scenario.to_string(),
        compressed: compress,
        requests,
        wall_seconds,
        requests_per_second: requests as f64 / wall_seconds,
        p50_us: percentile_us(&latencies_us, 0.5),
        p90_us: percentile_us(&latencies_us, 0.9),
        payload_bytes,
    }
}

/// Run the full server-throughput benchmark: raw `GetState` request path
/// (with and without compression, cached and stepping patterns), the
/// paper's load-test scenario over `options.users` user counts on the
/// in-process transport, and the same scenario over the TCP/HTTP front end
/// on loopback.
pub fn run_server_bench(options: &ServerBenchOptions) -> ServerBenchReport {
    let mut raw = Vec::new();
    for compress in [true, false] {
        for scenario in ["get_state", "step_state"] {
            raw.push(measure_raw(scenario, compress, options.min_seconds));
        }
    }

    let mut load = Vec::new();
    for &users in &options.users {
        for mode in ["full", "delta"] {
            let server = start_server(DeploymentMode::Direct, true, 4);
            let mut scenario = rvsim_loadgen::Scenario::paper_scaled(users, options.time_scale);
            scenario.programs = vec![program_server()];
            scenario.delta_state = mode == "delta";
            let report = rvsim_loadgen::run_load_test(&server, &scenario);
            server.shutdown();
            load.push(ServerLoadSample { users, compressed: true, mode: mode.to_string(), report });
        }
    }
    ServerBenchReport {
        raw,
        load,
        tcp: run_tcp_load_bench(options),
        high_connection: Vec::new(),
        multi_node: None,
        durability: None,
        observability: Some(run_observability_bench()),
    }
}

/// The TCP section of the server benchmark: the paper scenario through
/// `rvsim-net` over loopback, one keep-alive connection per user.  Returns
/// an empty section (after a note on stderr) when loopback sockets are
/// unavailable, so the benchmark still completes in locked-down sandboxes.
pub fn run_tcp_load_bench(options: &ServerBenchOptions) -> Vec<ServerLoadSample> {
    let mut tcp = Vec::new();
    for &users in &options.users {
        for mode in ["full", "delta"] {
            let deployment = DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: true,
                worker_threads: 4,
                idle_session_ttl_seconds: None,
            };
            let net_config = rvsim_net::NetConfig {
                // One keep-alive connection per user: the event loop carries
                // them all; cap connections with headroom for stragglers.
                max_connections: users + 16,
                ..rvsim_net::NetConfig::default()
            };
            let net =
                match rvsim_net::NetServer::start(SimulationServer::new(deployment), net_config) {
                    Ok(net) => net,
                    Err(e) => {
                        eprintln!("skipping TCP load section: cannot bind loopback: {e}");
                        return Vec::new();
                    }
                };
            let mut scenario = rvsim_loadgen::Scenario::paper_scaled(users, options.time_scale);
            scenario.programs = vec![program_server()];
            scenario.delta_state = mode == "delta";
            let report = rvsim_loadgen::run_load_test_tcp(net.local_addr(), &scenario);
            net.shutdown();
            tcp.push(ServerLoadSample { users, compressed: true, mode: mode.to_string(), report });
        }
    }
    tcp
}

// ---------------------------------------------------------------------------
// Multi-node scale-out benchmark (router tier over emulated remote backends)
// ---------------------------------------------------------------------------

/// One point of the multi-node scaling sweep: `backends` emulated nodes
/// behind one router, saturated with cached-`GetState` fan-out clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiNodeScalingSample {
    /// Backend processes behind the router.
    pub backends: usize,
    /// Warmed sessions spread across the fleet.
    pub sessions: usize,
    /// Requests completed in the window.
    pub requests: u64,
    /// Failed requests (must be 0 on a healthy fleet).
    pub errors: u64,
    /// Measurement window in seconds.
    pub wall_seconds: f64,
    /// Aggregate throughput in requests per second — the scaling metric.
    pub aggregate_rps: f64,
}

/// The drain-under-load measurement: clients hammer the fleet while one
/// backend is live-drained.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiNodeDrainSample {
    /// Sessions on the drained backend when the drain started.
    pub sessions: usize,
    /// Sessions the drain migrated.
    pub migrated: usize,
    /// Sessions the drain failed to move.
    pub failed: usize,
    /// Client requests completed while the drain ran.
    pub requests: u64,
    /// Client-visible errors during the drain (the headline: must be 0).
    pub errors: u64,
    /// Measurement window in seconds.
    pub wall_seconds: f64,
}

/// The `multi_node` section of `BENCH_server.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiNodeSection {
    /// Per-request service time each emulated backend sleeps, in
    /// microseconds.  The host is often a single core, so real CPU-bound
    /// backends cannot scale on it; sleeping backends overlap exactly the
    /// way network-separated nodes would, which is what the router tier is
    /// being measured on.
    pub emulated_service_time_us: u64,
    /// One sample per backend count.
    pub scaling: Vec<MultiNodeScalingSample>,
    /// `aggregate_rps` of the largest fleet over the single-backend fleet.
    pub speedup_1_to_max: f64,
    /// Drain-under-load sample (real `Direct` backends, no sleep emulation).
    #[serde(default)]
    pub drain: Option<MultiNodeDrainSample>,
}

/// How long each emulated backend sleeps per request in the scaling sweep.
pub const MULTI_NODE_SERVICE_TIME_US: u64 = 1_500;

/// Sessions placed per backend in the scaling sweep.
const SESSIONS_PER_BACKEND: usize = 4;

/// Start one emulated remote backend: a real `rvsim-net` front end whose
/// server sleeps [`MULTI_NODE_SERVICE_TIME_US`] per request, so a fleet of
/// them overlaps on one host the way separate machines would.
fn start_emulated_backend() -> std::io::Result<rvsim_net::NetServer> {
    rvsim_net::NetServer::start(
        SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::RemoteEmulated { service_time_us: MULTI_NODE_SERVICE_TIME_US },
            compress_responses: true,
            worker_threads: 1,
            idle_session_ttl_seconds: None,
        }),
        rvsim_net::NetConfig {
            event_loops: 1,
            dispatch_workers: 2,
            ..rvsim_net::NetConfig::default()
        },
    )
}

/// Start a router front end over `backends`, returning the handler too (the
/// benchmark asks it for ring placements).
fn start_router(
    backends: &[rvsim_net::NetServer],
    dispatch_workers: usize,
) -> std::io::Result<(rvsim_net::NetServer, std::sync::Arc<rvsim_net::Router>)> {
    let router = std::sync::Arc::new(rvsim_net::Router::new(
        backends.iter().map(|b| b.local_addr()).collect(),
    ));
    let front = rvsim_net::NetServer::start_with_handler(
        std::sync::Arc::clone(&router) as std::sync::Arc<dyn rvsim_net::ApiHandler>,
        rvsim_net::NetConfig {
            event_loops: 1,
            dispatch_workers,
            ..rvsim_net::NetConfig::default()
        },
    )?;
    Ok((front, router))
}

/// Pick explicit session ids whose ring placement is balanced: `per_backend`
/// ids owned by each backend, scanning upward from a fixed base.
fn balanced_session_ids(
    router: &rvsim_net::Router,
    backends: usize,
    per_backend: usize,
) -> Vec<Vec<u64>> {
    let mut ids: Vec<Vec<u64>> = vec![Vec::new(); backends];
    let mut candidate = rvsim_net::ROUTER_SESSION_BASE + 10_000_000;
    while ids.iter().any(|list| list.len() < per_backend) {
        if let Some(owner) = router.placement(candidate) {
            if ids[owner].len() < per_backend {
                ids[owner].push(candidate);
            }
        }
        candidate += 1;
    }
    ids
}

/// Create and warm the given sessions through the router.
fn warm_sessions(addr: std::net::SocketAddr, ids: &[u64]) -> Result<(), String> {
    let mut client = rvsim_net::TcpApiClient::new(addr);
    for &session in ids {
        match client.call(&rvsim_server::Request::CreateSession {
            program: program_server(),
            architecture: None,
            entry: None,
            session: Some(session),
        })? {
            rvsim_server::Response::SessionCreated { session: created } if created == session => {}
            other => return Err(format!("unexpected create response {other:?}")),
        }
        match client.call(&rvsim_server::Request::Step { session, cycles: 8 })? {
            rvsim_server::Response::Stepped { .. } => {}
            other => return Err(format!("unexpected step response {other:?}")),
        }
    }
    Ok(())
}

/// One scaling point: `backends` emulated nodes behind a router, saturated
/// for `seconds` with per-backend fan-out client pairs.
fn measure_multi_node_point(
    backends: usize,
    seconds: f64,
) -> Result<MultiNodeScalingSample, String> {
    let fleet: Vec<rvsim_net::NetServer> = (0..backends)
        .map(|_| start_emulated_backend())
        .collect::<std::io::Result<_>>()
        .map_err(|e| format!("cannot start backend: {e}"))?;
    let (front, router) = start_router(&fleet, (4 * backends).max(8))
        .map_err(|e| format!("cannot start router: {e}"))?;
    let addr = front.local_addr();

    let per_backend = balanced_session_ids(&router, backends, SESSIONS_PER_BACKEND);
    for ids in &per_backend {
        warm_sessions(addr, ids)?;
    }

    // Two closed-loop clients per backend's session set: enough concurrency
    // to overlap every backend's emulated service time, few enough threads
    // that the (possibly single-core) host spends its cycles serving.
    let targets: Vec<(std::net::SocketAddr, Vec<u64>)> =
        per_backend.iter().map(|ids| (addr, ids.clone())).collect();
    let report = rvsim_loadgen::run_cached_state_fanout(
        &targets,
        2,
        std::time::Duration::from_secs_f64(seconds),
    );

    let sample = MultiNodeScalingSample {
        backends,
        sessions: backends * SESSIONS_PER_BACKEND,
        requests: report.requests,
        errors: report.errors,
        wall_seconds: report.wall_seconds,
        aggregate_rps: report.rps(),
    };
    front.shutdown();
    for backend in fleet {
        backend.shutdown();
    }
    Ok(sample)
}

/// Drain-under-load: two real (`Direct`) backends behind a router, client
/// threads hammering every session while backend 0 is live-drained.
fn measure_multi_node_drain(seconds: f64) -> Result<MultiNodeDrainSample, String> {
    let fleet: Vec<rvsim_net::NetServer> = (0..2)
        .map(|_| {
            rvsim_net::NetServer::start(
                SimulationServer::new(DeploymentConfig {
                    mode: DeploymentMode::Direct,
                    compress_responses: true,
                    worker_threads: 2,
                    idle_session_ttl_seconds: None,
                }),
                rvsim_net::NetConfig {
                    event_loops: 1,
                    dispatch_workers: 2,
                    ..rvsim_net::NetConfig::default()
                },
            )
        })
        .collect::<std::io::Result<_>>()
        .map_err(|e| format!("cannot start backend: {e}"))?;
    let (front, router) =
        start_router(&fleet, 8).map_err(|e| format!("cannot start router: {e}"))?;
    let addr = front.local_addr();

    let per_backend = balanced_session_ids(&router, 2, SESSIONS_PER_BACKEND);
    for ids in &per_backend {
        warm_sessions(addr, ids)?;
    }
    let all_ids: Vec<u64> = per_backend.iter().flatten().copied().collect();

    // Fire the drain from a side thread a third of the way into the window,
    // while the fan-out clients are at full speed.
    let drain = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs_f64(seconds / 3.0));
        rvsim_net::http_post(
            addr,
            "/admin/drain",
            br#"{"backend":0}"#,
            std::time::Duration::from_secs(60),
        )
    });
    let report = rvsim_loadgen::run_cached_state_fanout(
        &[(addr, all_ids.clone())],
        4,
        std::time::Duration::from_secs_f64(seconds),
    );
    let (status, body) = drain.join().expect("drain thread").map_err(|e| format!("drain: {e}"))?;
    if status != 200 {
        return Err(format!("drain answered {status}: {}", String::from_utf8_lossy(&body)));
    }
    let drain_report: rvsim_net::DrainReport =
        serde_json::from_slice(&body).map_err(|e| format!("drain report: {e}"))?;

    let sample = MultiNodeDrainSample {
        sessions: drain_report.sessions,
        migrated: drain_report.migrated,
        failed: drain_report.failed.len(),
        requests: report.requests,
        errors: report.errors,
        wall_seconds: report.wall_seconds,
    };
    front.shutdown();
    for backend in fleet {
        backend.shutdown();
    }
    Ok(sample)
}

// ---------------------------------------------------------------------------
// Crash durability: kill a backend under stepping load, measure recovery.
// ---------------------------------------------------------------------------

/// The `durability` section of `BENCH_server.json`: two checkpointing
/// backends share a state directory behind a router; one is killed a third
/// of the way into a stepping-load window and the router re-owns its
/// sessions on the survivor from their last checkpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurabilitySection {
    /// Periodic checkpoint cadence the backends ran with, in milliseconds.
    /// Recovery staleness is bounded by this (plus one in-flight write).
    pub checkpoint_interval_ms: u64,
    /// Warmed sessions across the fleet.
    pub sessions: usize,
    /// Sessions resident on the backend that was killed.
    pub sessions_on_killed_backend: usize,
    /// Sessions serving through the router after the crash (the headline:
    /// must equal `sessions`).
    pub recovered: usize,
    /// Sessions that no longer answered after the crash (must be 0).
    pub lost: usize,
    /// Worst restore staleness the router reported, in milliseconds.
    pub max_staleness_ms: u64,
    /// Client requests completed during the load window.
    pub requests: u64,
    /// Client-visible errors during the window (the crash burst).
    pub errors: u64,
    /// Errors bucketed by elapsed second: a burst around the kill followed
    /// by zeros is the breaker + failover working; a smear is not.
    pub errors_by_second: Vec<u64>,
    /// Requests the router fast-failed while a breaker was open (these are
    /// *contained* failures — no timeout was inflicted on the client).
    pub breaker_fast_fails: u64,
    /// Load-window duration in seconds.
    pub wall_seconds: f64,
}

/// Checkpoint cadence of the durability measurement.
pub const DURABILITY_CHECKPOINT_INTERVAL_MS: u64 = 250;

/// Run the crash-durability measurement for (at least) `seconds`: warm a
/// balanced session fleet over two checkpointing backends, kill backend 0
/// a third of the way into a stepping-load window, and report how many
/// sessions survived, how stale they came back and what the clients felt.
/// Returns `None` (after a note on stderr) when loopback is unavailable or
/// the fleet cannot start.
pub fn run_durability_bench(seconds: f64) -> Option<DurabilitySection> {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping durability section: loopback unavailable");
        return None;
    }
    match measure_durability(seconds.max(3.0)) {
        Ok(section) => Some(section),
        Err(e) => {
            eprintln!("skipping durability section: {e}");
            None
        }
    }
}

fn measure_durability(seconds: f64) -> Result<DurabilitySection, String> {
    let state_dir =
        std::env::temp_dir().join(format!("rvsim-bench-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    let mut fleet: Vec<rvsim_net::NetServer> = Vec::new();
    for _ in 0..2 {
        let server = SimulationServer::with_checkpoints(
            DeploymentConfig {
                mode: DeploymentMode::Direct,
                compress_responses: true,
                worker_threads: 2,
                idle_session_ttl_seconds: None,
            },
            rvsim_server::CheckpointConfig {
                state_dir: state_dir.clone(),
                interval: std::time::Duration::from_millis(DURABILITY_CHECKPOINT_INTERVAL_MS),
                dirty_cycles: 0,
            },
        )
        .map_err(|e| format!("cannot open state dir: {e}"))?;
        let net = rvsim_net::NetServer::start(
            server,
            rvsim_net::NetConfig {
                event_loops: 1,
                dispatch_workers: 2,
                // The periodic checkpoint sweep rides the housekeeping tick;
                // tick faster than the checkpoint interval so the cadence is
                // interval-bound, not tick-bound.
                housekeeping_interval: std::time::Duration::from_millis(100),
                ..rvsim_net::NetConfig::default()
            },
        )
        .map_err(|e| format!("cannot start backend: {e}"))?;
        fleet.push(net);
    }
    let router =
        std::sync::Arc::new(rvsim_net::Router::new(fleet.iter().map(|b| b.local_addr()).collect()));
    let front = rvsim_net::NetServer::start_with_handler(
        std::sync::Arc::clone(&router) as std::sync::Arc<dyn rvsim_net::ApiHandler>,
        rvsim_net::NetConfig {
            event_loops: 1,
            dispatch_workers: 8,
            // Fast health probes: two consecutive misses flip a backend dead,
            // so detection lands within ~2 ticks of the kill.
            housekeeping_interval: std::time::Duration::from_millis(250),
            ..rvsim_net::NetConfig::default()
        },
    )
    .map_err(|e| format!("cannot start router: {e}"))?;
    let addr = front.local_addr();

    let per_backend = balanced_session_ids(&router, 2, SESSIONS_PER_BACKEND);
    for ids in &per_backend {
        warm_sessions(addr, ids)?;
    }
    let all_ids: Vec<u64> = per_backend.iter().flatten().copied().collect();
    let victim = fleet.remove(0);
    let survivor = fleet.remove(0);
    let sessions_on_killed_backend = victim.server().session_count();

    // Kill backend 0 a third of the way into the stepping-load window.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs_f64(seconds / 3.0));
        victim.shutdown();
    });
    let report = rvsim_loadgen::run_step_load(
        addr,
        &all_ids,
        4,
        std::time::Duration::from_secs_f64(seconds),
    );
    killer.join().expect("kill thread");

    // The router must have detected the death and run recovery by now; give
    // it a short grace period in case the kill landed late in the window.
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    let failover = loop {
        if let Some(failover) = router.last_failover() {
            break failover;
        }
        if Instant::now() >= deadline {
            return Err("router never reported a failover".to_string());
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    let max_staleness_ms = failover.recovered.iter().map(|r| r.staleness_ms).max().unwrap_or(0);

    // The acceptance check: every warmed session still answers.
    let mut client = rvsim_net::TcpApiClient::new(addr);
    let mut recovered = 0usize;
    for &session in &all_ids {
        if matches!(
            client.call(&rvsim_server::Request::GetState { session }),
            Ok(rvsim_server::Response::State(_))
        ) {
            recovered += 1;
        }
    }

    let section = DurabilitySection {
        checkpoint_interval_ms: DURABILITY_CHECKPOINT_INTERVAL_MS,
        sessions: all_ids.len(),
        sessions_on_killed_backend,
        recovered,
        lost: all_ids.len() - recovered,
        max_staleness_ms,
        requests: report.requests,
        errors: report.errors,
        errors_by_second: report.errors_by_second.clone(),
        breaker_fast_fails: router.breaker_fast_fail_count(),
        wall_seconds: report.wall_seconds,
    };
    front.shutdown();
    survivor.shutdown();
    let _ = std::fs::remove_dir_all(&state_dir);
    Ok(section)
}

/// Run the multi-node scale-out benchmark: one scaling point per backend
/// count in `backend_counts` (each measured for `seconds`), plus the
/// drain-under-load sample.  Returns `None` (after a note on stderr) when
/// loopback sockets are unavailable.
pub fn run_multi_node_bench(backend_counts: &[usize], seconds: f64) -> Option<MultiNodeSection> {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping multi-node section: loopback unavailable");
        return None;
    }
    let mut scaling = Vec::new();
    for &backends in backend_counts {
        match measure_multi_node_point(backends.max(1), seconds) {
            Ok(sample) => scaling.push(sample),
            Err(e) => {
                eprintln!("skipping multi-node section: {e}");
                return None;
            }
        }
    }
    let speedup = match (scaling.first(), scaling.last()) {
        (Some(first), Some(last)) if first.aggregate_rps > 0.0 => {
            last.aggregate_rps / first.aggregate_rps
        }
        _ => 0.0,
    };
    let drain = match measure_multi_node_drain((seconds * 1.5).max(1.0)) {
        Ok(sample) => Some(sample),
        Err(e) => {
            eprintln!("multi-node drain sample failed: {e}");
            None
        }
    };
    Some(MultiNodeSection {
        emulated_service_time_us: MULTI_NODE_SERVICE_TIME_US,
        scaling,
        speedup_1_to_max: speedup,
        drain,
    })
}

// ---------------------------------------------------------------------------
// Observability overhead: what the request tracing costs per operation.
// ---------------------------------------------------------------------------

/// The `observability` section of `BENCH_server.json`: measured cost of
/// each tracing primitive on the request hot path, the estimated
/// per-request total, and the headline before/after check against the
/// previously committed report (the baseline fields are filled in by
/// `rvsim-cli bench --server`, which knows the old file).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObservabilitySection {
    /// One lock-free histogram record — a handful of relaxed atomic RMWs —
    /// in ns/op.  A traced request performs five of these (four phases at
    /// the front end, one endpoint at the backend).
    pub histogram_record_ns: f64,
    /// One journal append (seqlock ring-buffer write), in ns/op.  Off the
    /// fast path: only slow or failed requests are journaled.
    pub journal_record_ns: f64,
    /// Minting one request id at the edge (atomic increment + bit mix),
    /// in ns/op.
    pub mint_request_id_ns: f64,
    /// One monotonic clock sample, in ns/op.  A traced request takes four
    /// (the phase boundaries).
    pub clock_sample_ns: f64,
    /// Estimated added cost per fully-traced request in ns: four clock
    /// samples, five histogram records and one id mint.  An upper bound —
    /// the sub-microsecond cached-serve fast paths sample their endpoint
    /// timing 1-in-16, paying only a relaxed counter bump on untimed
    /// requests.
    pub per_request_overhead_ns: f64,
    /// Headline cached-GetState requests/s of the previously committed
    /// report (`None` on a first run with no baseline to compare against).
    #[serde(default)]
    pub baseline_headline_get_state_rps: Option<f64>,
    /// This run's headline relative to the baseline: `now / before - 1`
    /// (negative = slower).  The observability budget is |delta| ≤ 5%.
    #[serde(default)]
    pub headline_delta_ratio: Option<f64>,
    /// 32-user full-snapshot in-process p90 of the previously committed
    /// report, in milliseconds.
    #[serde(default)]
    pub baseline_load_p90_ms: Option<f64>,
    /// This run's 32-user full-snapshot p90 relative to the baseline.
    #[serde(default)]
    pub load_p90_delta_ratio: Option<f64>,
}

fn measure_ns_per_op(mut op: impl FnMut()) -> f64 {
    const WARMUP: u32 = 10_000;
    const ITERS: u32 = 1_000_000;
    for _ in 0..WARMUP {
        op();
    }
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        op();
    }
    t0.elapsed().as_nanos() as f64 / f64::from(ITERS)
}

/// Measure the tracing primitives in tight single-thread loops.  Cheap (a
/// few ms total) and steady enough for a smoke-level budget check; the
/// authoritative overhead number is the headline delta against the
/// committed baseline, which exercises the real request path.
pub fn run_observability_bench() -> ObservabilitySection {
    let hist = rvsim_obs::Histogram::new();
    let mut sample = 0u64;
    let histogram_record_ns = measure_ns_per_op(|| {
        sample = sample.wrapping_add(997);
        hist.record(sample & 0xFFFF);
    });

    let journal = rvsim_obs::Journal::new(4096);
    let ts = journal.now_us();
    let journal_record_ns = measure_ns_per_op(|| {
        journal.record(
            rvsim_obs::Event::new(rvsim_obs::EventKind::Request, ts).request(1).fields(200, 120),
        );
    });

    let observer = rvsim_obs::Observer::new(64);
    let mut sink = 0u64;
    let mint_request_id_ns = measure_ns_per_op(|| {
        sink = sink.wrapping_add(observer.mint_request_id());
    });
    std::hint::black_box(sink);

    let mut clock_sink = std::time::Instant::now();
    let clock_sample_ns = measure_ns_per_op(|| {
        clock_sink = std::time::Instant::now();
    });
    std::hint::black_box(clock_sink);

    ObservabilitySection {
        histogram_record_ns,
        journal_record_ns,
        mint_request_id_ns,
        clock_sample_ns,
        per_request_overhead_ns: 4.0 * clock_sample_ns
            + 5.0 * histogram_record_ns
            + mint_request_id_ns,
        baseline_headline_get_state_rps: None,
        headline_delta_ratio: None,
        baseline_load_p90_ms: None,
        load_p90_delta_ratio: None,
    }
}

/// Print a paper-style table header once per bench run.
pub fn print_header(title: &str, columns: &str) {
    println!();
    println!("=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().max(40)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmark_programs_terminate() {
        let config = ArchitectureConfig::default();
        for program in [program_arithmetic(), program_memory(), program_mixed(), program_float()] {
            let (cycles, ipc) = run_to_completion(&program, &config);
            assert!(cycles > 10);
            assert!(ipc > 0.0);
        }
    }

    #[test]
    fn pipeline_bench_harness_measures_all_cells() {
        // A tiny measurement window keeps this a smoke test; the real numbers
        // come from `rvsim-cli bench` / the pipeline_throughput bench.
        let workloads = pipeline_workloads();
        assert!(workloads.iter().any(|w| w.name == "quicksort"));
        let sample = measure_pipeline(&workloads[1], &ArchitectureConfig::scalar(), 0.0);
        assert!(sample.committed_per_run > 100);
        assert!(sample.retired_per_second > 0.0);
        assert!(sample.runs >= 1);
        assert_eq!(sample.fetch_width, 1);
        let json = serde_json::to_string(&sample).unwrap();
        let back: PipelineSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sample);
    }

    #[test]
    fn quicksort_workload_sorts_and_checksums() {
        let w = workload_quicksort();
        let mut sim = Simulator::from_assembly_with_memory(
            &w.assembly,
            &ArchitectureConfig::default(),
            w.memory.clone(),
        )
        .unwrap();
        sim.run(50_000_000).unwrap();
        // Checksum of the sorted array: sum(a[i] * (i+1)) for the fixed input.
        let mut sorted = vec![
            93i64, 7, 55, 12, 88, 3, 41, 67, 25, 99, 4, 73, 18, 62, 31, 80, 9, 46, 58, 2, 77, 36,
            14, 91, 28, 65, 50, 6, 84, 21, 70, 39,
        ];
        sorted.sort_unstable();
        let expected: i64 = sorted.iter().enumerate().map(|(i, v)| v * (i as i64 + 1)).sum();
        assert_eq!(sim.int_register(10), expected);
    }

    #[test]
    fn server_helper_starts_and_stops() {
        let server = start_server(DeploymentMode::Direct, true, 2);
        assert_eq!(server.server().session_count(), 0);
        server.shutdown();
    }

    #[test]
    fn server_bench_harness_measures_all_cells() {
        let options = ServerBenchOptions { min_seconds: 0.0, time_scale: 0.0, users: vec![2] };
        let report = run_server_bench(&options);
        // 2 scenarios × compression on/off.
        assert_eq!(report.raw.len(), 4);
        for s in &report.raw {
            assert!(s.requests >= 1);
            assert!(s.requests_per_second > 0.0);
            assert!(s.p90_us >= s.p50_us);
            assert!(s.payload_bytes > 0);
        }
        let compressed = report
            .raw
            .iter()
            .find(|s| s.scenario == "get_state" && s.compressed)
            .expect("compressed get_state cell");
        let plain = report
            .raw
            .iter()
            .find(|s| s.scenario == "get_state" && !s.compressed)
            .expect("plain get_state cell");
        assert!(
            compressed.payload_bytes < plain.payload_bytes,
            "compression must shrink the state payload ({} vs {})",
            compressed.payload_bytes,
            plain.payload_bytes
        );
        assert!(report.headline_get_state_rps().unwrap() > 0.0);
        assert!(!report.load.is_empty());
        assert!(report.load.iter().all(|l| l.report.errors == 0));
        // The TCP section runs the same scenario over loopback; when the
        // sandbox forbids loopback sockets it is empty (and said so on
        // stderr), never failing the in-process benchmark.
        if !report.tcp.is_empty() {
            assert_eq!(report.tcp.len(), 2, "full + delta per user count");
            assert!(report.tcp.iter().all(|l| l.report.errors == 0));
            assert!(report.tcp.iter().all(|l| l.report.transactions > 0));
        }
        let json = serde_json::to_string(&report).unwrap();
        let back: ServerBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.raw, report.raw);
        // A pre-TCP report (no `tcp` key) still deserializes.
        let legacy: ServerBenchReport = serde_json::from_str(r#"{"raw":[],"load":[]}"#).unwrap();
        assert!(legacy.tcp.is_empty());
    }

    #[test]
    fn durability_bench_recovers_every_session_after_a_kill() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping durability smoke test: loopback unavailable");
            return;
        }
        let section = run_durability_bench(3.0).expect("loopback was available");
        assert!(section.sessions > 0);
        assert!(
            section.sessions_on_killed_backend > 0,
            "the killed backend must have held sessions: {section:?}"
        );
        assert_eq!(section.lost, 0, "no session may be lost: {section:?}");
        assert_eq!(section.recovered, section.sessions);
        assert!(section.requests > 0, "the load must have run");
        // Staleness is bounded by the checkpoint cadence plus scheduling
        // slack — order seconds, never the whole run.
        assert!(
            section.max_staleness_ms < 10_000,
            "staleness out of bounds: {} ms",
            section.max_staleness_ms
        );
        // The crash is a bounded burst, not a smear: the last bucket of the
        // window is clean (the breaker opened and failover re-owned the
        // sessions well before the window closed).
        if let Some(&last) = section.errors_by_second.last() {
            assert_eq!(last, 0, "errors must stop before the window ends: {section:?}");
        }
        let json = serde_json::to_string(&section).unwrap();
        let back: DurabilitySection = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sessions, section.sessions);
    }

    #[test]
    fn multi_node_bench_scales_and_drains_cleanly() {
        if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
            eprintln!("skipping multi-node smoke test: loopback unavailable");
            return;
        }
        let section = run_multi_node_bench(&[1, 2], 0.4).expect("loopback was available");
        assert_eq!(section.scaling.len(), 2);
        for sample in &section.scaling {
            assert_eq!(sample.errors, 0, "fleet of {} saw errors", sample.backends);
            assert!(sample.requests > 0);
            assert!(sample.aggregate_rps > 0.0);
        }
        assert!(section.speedup_1_to_max > 1.0, "2 backends must beat 1: {section:?}");
        let drain = section.drain.as_ref().expect("drain sample on loopback");
        assert_eq!(drain.errors, 0, "drain must be invisible to clients");
        assert_eq!(drain.failed, 0);
        assert_eq!(drain.migrated, drain.sessions);
        assert!(drain.requests > 0);
        let json = serde_json::to_string(&section).unwrap();
        let back: MultiNodeSection = serde_json::from_str(&json).unwrap();
        assert_eq!(back.scaling.len(), section.scaling.len());
    }

    #[test]
    fn server_bench_program_runs_long() {
        // The server workload must not halt within any realistic measurement
        // window: a halted session would freeze the cycle counter and turn
        // the step_state scenario into a cached-refresh measurement.
        let mut sim = simulator(&program_server(), &ArchitectureConfig::default());
        for _ in 0..5_000 {
            sim.step();
        }
        assert!(!sim.is_halted(), "server bench program halted too early");
    }
}
