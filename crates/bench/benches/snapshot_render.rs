//! **E3 — state rendering**: the paper reports that rendering the main
//! simulator window takes ~80 ms in the browser.  The Rust reproduction has
//! no browser; the equivalent server-side work is producing everything the
//! view renders — the full processor snapshot plus its JSON encoding — which
//! is what this bench measures for growing amounts of in-flight state.
//!
//! Expected shape: snapshot cost grows with the amount of in-flight state
//! (wider machines, fuller ROBs) and is dominated by serialization for large
//! windows, consistent with E1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvsim_bench::{program_memory, program_mixed, simulator};
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot, Simulator};
use std::hint::black_box;

fn warmed(program: &str, config: &ArchitectureConfig, steps: u64) -> Simulator {
    let mut sim = simulator(program, config);
    for _ in 0..steps {
        sim.step();
    }
    sim
}

fn bench_snapshot_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_render");

    for (label, config) in [
        ("scalar", ArchitectureConfig::scalar()),
        ("default", ArchitectureConfig::default()),
        ("wide", ArchitectureConfig::wide()),
    ] {
        let sim = warmed(&program_mixed(), &config, 8);
        let snapshot = ProcessorSnapshot::capture(&sim);
        println!(
            "snapshot on {label:>8}: {} ROB entries, {} cache lines, {} bytes of JSON",
            snapshot.reorder_buffer.len(),
            snapshot.cache_lines.len(),
            snapshot.to_json().len()
        );
        group.bench_with_input(BenchmarkId::new("capture", label), &sim, |b, sim| {
            b.iter(|| black_box(ProcessorSnapshot::capture(sim)));
        });
        group.bench_with_input(BenchmarkId::new("capture_plus_json", label), &sim, |b, sim| {
            b.iter(|| black_box(ProcessorSnapshot::capture(sim).to_json()));
        });
    }

    // The memory workload exercises the cache view (more valid lines).
    let sim = warmed(&program_memory(), &ArchitectureConfig::default(), 200);
    group.bench_function("capture_plus_json/after_200_cycles_memory_workload", |b| {
        b.iter(|| black_box(ProcessorSnapshot::capture(&sim).to_json()));
    });

    group.finish();
}

criterion_group!(benches, bench_snapshot_render);
criterion_main!(benches);
