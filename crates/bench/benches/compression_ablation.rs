//! **E2 — compression ablation**: the paper reports that enabling gzip raised
//! local load-test throughput by ~40 %.  This bench compares the load-test
//! throughput and the per-payload cost with compression on and off, and also
//! measures the raw compressor on realistic snapshot JSON.
//!
//! Expected shape: compressed responses are several times smaller; the
//! compression CPU cost is small compared with the bytes saved, so the
//! compressed configuration sustains equal or higher throughput on
//! state-bearing workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvsim_bench::{program_mixed, simulator, start_server};
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot};
use rvsim_loadgen::{run_load_test, Scenario};
use rvsim_server::DeploymentMode;
use std::hint::black_box;

fn snapshot_json() -> Vec<u8> {
    let mut sim = simulator(&program_mixed(), &ArchitectureConfig::default());
    for _ in 0..8 {
        sim.step();
    }
    ProcessorSnapshot::capture(&sim).to_json().into_bytes()
}

fn bench_compressor(c: &mut Criterion) {
    let payload = snapshot_json();
    let ratio = rvsim_compress::ratio(&payload);
    println!(
        "\nE2 — snapshot payload: {} bytes raw, {} bytes compressed (ratio {:.2})",
        payload.len(),
        rvsim_compress::compress(&payload).len(),
        ratio
    );

    let mut group = c.benchmark_group("compressor");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("compress_snapshot_json", |b| {
        b.iter(|| black_box(rvsim_compress::compress(&payload)))
    });
    let compressed = rvsim_compress::compress(&payload);
    group.bench_function("decompress_snapshot_json", |b| {
        b.iter(|| black_box(rvsim_compress::decompress(&compressed).unwrap()))
    });
    group.finish();
}

fn bench_load_with_and_without_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_test_compression");
    group.sample_size(10);

    println!("\nE2 — load-test throughput with and without response compression:");
    for (label, compress) in [("uncompressed", false), ("compressed", true)] {
        let server = start_server(DeploymentMode::Direct, compress, 4);
        let mut scenario = Scenario::paper_scaled(30, 0.001);
        scenario.steps_per_user = 10;
        let report = run_load_test(&server, &scenario);
        println!("  {}", report.table_row(label));
        server.shutdown();

        group.bench_with_input(BenchmarkId::new("30_users", label), &compress, |b, &compress| {
            b.iter(|| {
                let server = start_server(DeploymentMode::Direct, compress, 4);
                let mut scenario = Scenario::paper_scaled(30, 0.001);
                scenario.steps_per_user = 5;
                let report = run_load_test(&server, &scenario);
                server.shutdown();
                report.transactions
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compressor, bench_load_with_and_without_compression);
criterion_main!(benches);
