//! **A1 — architecture sweeps**: the educational experiments the simulator
//! exists to support (§I-B): how superscalar width, reorder-buffer size,
//! branch predictor and cache geometry change the cycle count of the same
//! kernel.  These are the ablation benches DESIGN.md calls out.
//!
//! Expected shapes:
//! * wider issue helps ILP-rich code with diminishing returns;
//! * larger ROBs help until the window covers the kernel's ILP;
//! * two-bit predictors beat one-bit and static predictors on loop code;
//! * larger/more associative caches monotonically reduce the miss rate of a
//!   strided kernel until it fits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvsim_bench::{program_float, program_memory, run_to_completion};
use rvsim_core::ArchitectureConfig;
use rvsim_predictor::PredictorKind;
use std::hint::black_box;

const ILP_KERNEL: &str = "
main:
    li   t0, 0
    li   t1, 0
    li   t2, 0
    li   t3, 0
    li   t4, 128
loop:
    addi t0, t0, 1
    addi t1, t1, 2
    addi t2, t2, 3
    addi t3, t3, 4
    addi t4, t4, -1
    bnez t4, loop
    add  a0, t0, t1
    ret
";

const BRANCHY_KERNEL: &str = "
main:
    li   t0, 0
    li   t1, 200
    li   a0, 0
loop:
    andi t2, t0, 3
    beqz t2, skip
    addi a0, a0, 1
skip:
    addi t0, t0, 1
    blt  t0, t1, loop
    ret
";

fn bench_width_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("width_sweep");
    println!("\nA1.width — ILP kernel:");
    for (label, config) in [
        ("1-wide", ArchitectureConfig::scalar()),
        ("2-wide", ArchitectureConfig::default()),
        ("4-wide", ArchitectureConfig::wide()),
    ] {
        let (cycles, ipc) = run_to_completion(ILP_KERNEL, &config);
        println!("  {label:<8} {cycles:>8} cycles  IPC {ipc:.3}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| black_box(run_to_completion(ILP_KERNEL, config)));
        });
    }
    group.finish();
}

fn bench_rob_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("rob_sweep");
    println!("\nA1.rob — float kernel on the 4-wide machine:");
    for rob in [8usize, 16, 32, 64] {
        let mut config = ArchitectureConfig::wide();
        config.buffers.rob_size = rob;
        config.memory.rename_file_size = rob.max(64);
        let (cycles, ipc) = run_to_completion(&program_float(), &config);
        println!("  ROB {rob:>3} {cycles:>8} cycles  IPC {ipc:.3}");
        group.bench_with_input(BenchmarkId::from_parameter(rob), &config, |b, config| {
            b.iter(|| black_box(run_to_completion(&program_float(), config)));
        });
    }
    group.finish();
}

fn bench_predictor_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor_sweep");
    println!("\nA1.predictor — branchy kernel:");
    for (label, kind) in [
        ("zero-bit", PredictorKind::Zero),
        ("one-bit", PredictorKind::One),
        ("two-bit", PredictorKind::Two),
    ] {
        let mut config = ArchitectureConfig::default();
        config.predictor.predictor_kind = kind;
        config.predictor.history_bits = 4;
        let (cycles, ipc) = run_to_completion(BRANCHY_KERNEL, &config);
        println!("  {label:<9} {cycles:>8} cycles  IPC {ipc:.3}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| black_box(run_to_completion(BRANCHY_KERNEL, config)));
        });
    }
    group.finish();
}

fn bench_cache_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sweep");
    println!("\nA1.cache — strided memory kernel:");
    for (label, lines, line_size, assoc) in [
        ("tiny-direct", 4usize, 16usize, 1usize),
        ("small-2way", 8, 32, 2),
        ("medium-2way", 16, 32, 2),
        ("large-4way", 64, 64, 4),
    ] {
        let mut config = ArchitectureConfig::default();
        config.cache.line_count = lines;
        config.cache.line_size = line_size;
        config.cache.associativity = assoc;
        config.memory.timings.load_latency = 20;
        config.memory.timings.store_latency = 20;
        let (cycles, _) = run_to_completion(&program_memory(), &config);
        println!("  {label:<12} {cycles:>8} cycles ({} B cache)", lines * line_size);
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| black_box(run_to_completion(&program_memory(), config)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_width_sweep,
    bench_rob_sweep,
    bench_predictor_sweep,
    bench_cache_sweep
);
criterion_main!(benches);
