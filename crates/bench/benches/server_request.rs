//! **Server request path**: per-request cost of the `GetState` serve path —
//! the layer the paper's evaluation measures (JSON encode dominates request
//! time, §IV-A).  Cells cover the GUI's two request patterns (refreshing an
//! unchanged session and stepping+fetching a changing one) with and without
//! response compression, through `SimulationServer::handle_raw`, i.e. the
//! full decode → simulate → capture → encode → compress pipeline.
//!
//! The committed trajectory lives in `BENCH_server.json` (produced by
//! `rvsim-cli bench --server --json`); this bench is the Criterion view of
//! the same path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvsim_bench::raw_bench_server;
use rvsim_server::Request;
use std::hint::black_box;
use std::io::Write as _;

fn bench_server_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_request");

    for compress in [false, true] {
        let label = if compress { "compressed" } else { "plain" };

        // Repeated snapshot fetch of an unchanged session (GUI refresh).
        let (server, session) = raw_bench_server(compress);
        let state = serde_json::to_vec(&Request::GetState { session }).unwrap();
        group.bench_with_input(BenchmarkId::new("get_state", label), &server, |b, server| {
            b.iter(|| black_box(server.handle_raw(&state)));
        });

        // Step one cycle then fetch: every fetch captures a changed machine.
        let (server, session) = raw_bench_server(compress);
        let step = serde_json::to_vec(&Request::Step { session, cycles: 1 }).unwrap();
        let state = serde_json::to_vec(&Request::GetState { session }).unwrap();
        group.bench_with_input(BenchmarkId::new("step_state", label), &server, |b, server| {
            b.iter(|| {
                black_box(server.handle_raw(&step));
                black_box(server.handle_raw(&state));
            });
        });

        // Delta protocol: step then fetch only what changed since the
        // previous cycle (after the first full-snapshot fallback the server
        // serves true deltas).
        let (server, session) = raw_bench_server(compress);
        let step = serde_json::to_vec(&Request::Step { session, cycles: 1 }).unwrap();
        // raw_bench_server warms the session by 64 steps.  The request varies
        // per iteration (since_cycle advances), so it is rendered into a
        // reusable buffer with a plain write! instead of the serde path the
        // fixed-request cells pre-serialize outside the loop — keeping
        // request-construction overhead negligible in the timing.
        let mut cycle = 64u64;
        let mut delta_req: Vec<u8> = Vec::with_capacity(64);
        group.bench_with_input(BenchmarkId::new("step_delta", label), &server, |b, server| {
            b.iter(|| {
                black_box(server.handle_raw(&step));
                delta_req.clear();
                write!(
                    delta_req,
                    "{{\"type\":\"get_state_delta\",\"session\":{session},\"since_cycle\":{cycle}}}"
                )
                .unwrap();
                cycle += 1;
                black_box(server.handle_raw(&delta_req));
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_server_request);
criterion_main!(benches);
