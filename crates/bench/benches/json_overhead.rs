//! **E1 — JSON overhead**: the paper's key profiling result (§IV-A) is that
//! "about 60 % of the request handling time is consumed by working with the
//! JSON format".  This bench measures the three components of a state-bearing
//! request separately — pure simulation stepping, snapshot construction, and
//! JSON serialization/compression — and prints the JSON share of the total.
//!
//! Expected shape: for interactive step+state requests the serialization side
//! clearly dominates (>50 % of the request time), so further simulator-only
//! optimizations have diminishing returns — the paper's conclusion.

use criterion::{criterion_group, criterion_main, Criterion};
use rvsim_bench::{program_mixed, simulator};
use rvsim_core::{ArchitectureConfig, ProcessorSnapshot};
use rvsim_server::{DeploymentConfig, DeploymentMode, Request, SimulationServer};
use std::hint::black_box;
use std::time::Instant;

fn bench_components(c: &mut Criterion) {
    let config = ArchitectureConfig::default();

    // Component 1: one simulation step on a warmed-up pipeline.
    c.bench_function("component/simulation_step", |b| {
        let mut sim = simulator(&program_mixed(), &config);
        for _ in 0..5 {
            sim.step();
        }
        b.iter(|| {
            if sim.is_halted() {
                sim.reset();
            }
            sim.step();
            black_box(sim.cycle())
        });
    });

    // Component 2: snapshot construction (the data the GUI renders).
    c.bench_function("component/snapshot_build", |b| {
        let mut sim = simulator(&program_mixed(), &config);
        for _ in 0..8 {
            sim.step();
        }
        b.iter(|| black_box(ProcessorSnapshot::capture(&sim)));
    });

    // Component 3: JSON serialization of that snapshot.
    c.bench_function("component/json_serialize", |b| {
        let mut sim = simulator(&program_mixed(), &config);
        for _ in 0..8 {
            sim.step();
        }
        let snapshot = ProcessorSnapshot::capture(&sim);
        b.iter(|| black_box(snapshot.to_json()));
    });

    // Whole request through the server, plus an explicit share breakdown.
    c.bench_function("request/step_plus_state", |b| {
        let server = SimulationServer::new(DeploymentConfig {
            mode: DeploymentMode::Direct,
            compress_responses: true,
            worker_threads: 1,
            idle_session_ttl_seconds: None,
        });
        let session = match server.handle(Request::CreateSession {
            program: program_mixed(),
            architecture: None,
            entry: None,
            session: None,
        }) {
            rvsim_server::Response::SessionCreated { session } => session,
            other => panic!("unexpected {other:?}"),
        };
        let step = serde_json::to_vec(&Request::Step { session, cycles: 1 }).unwrap();
        let state = serde_json::to_vec(&Request::GetState { session }).unwrap();
        b.iter(|| {
            black_box(server.handle_raw(&step));
            black_box(server.handle_raw(&state));
        });
    });

    print_share_breakdown();
}

/// One-shot measurement printed in the paper's terms: what fraction of the
/// request-handling time is spent on JSON (serialization + compression)?
fn print_share_breakdown() {
    let config = ArchitectureConfig::default();
    let mut sim = simulator(&program_mixed(), &config);
    for _ in 0..8 {
        sim.step();
    }
    const N: u32 = 2000;

    let t0 = Instant::now();
    for _ in 0..N {
        if sim.is_halted() {
            sim.reset();
        }
        sim.step();
    }
    let simulate = t0.elapsed();

    let t0 = Instant::now();
    for _ in 0..N {
        black_box(ProcessorSnapshot::capture(&sim));
    }
    let snapshot = t0.elapsed();

    let snap = ProcessorSnapshot::capture(&sim);
    let t0 = Instant::now();
    for _ in 0..N {
        let json = snap.to_json();
        black_box(rvsim_compress::compress(json.as_bytes()));
    }
    let serialize = t0.elapsed();

    let total = simulate + snapshot + serialize;
    let share = serialize.as_secs_f64() / total.as_secs_f64() * 100.0;
    println!("\nE1 — per-request time breakdown over {N} interactive step+state requests:");
    println!("  simulation step:        {:>10.1?}", simulate);
    println!("  snapshot construction:  {:>10.1?}", snapshot);
    println!("  JSON encode + compress: {:>10.1?}", serialize);
    println!("  => JSON share of request handling: {share:.1} % (paper reports ~60 %)");
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
