//! **A2 — backward simulation cost**: the paper implements backward stepping
//! as a forward re-simulation of `t − 1` cycles and notes that this "imposes
//! higher computational demands on the server" and is intended for small
//! programs over a few thousand cycles (§III-B).
//!
//! Expected shape: the cost of a single backward step grows linearly with the
//! cycle the simulation has reached, while a forward step stays constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvsim_bench::simulator;
use rvsim_core::ArchitectureConfig;
use std::hint::black_box;

/// A long-running loop so any target depth is reachable.
const LONG_KERNEL: &str = "
main:
    li   t0, 100000
    li   a0, 0
loop:
    addi a0, a0, 1
    addi t0, t0, -1
    bnez t0, loop
    ret
";

fn bench_backward(c: &mut Criterion) {
    let config = ArchitectureConfig::default();

    let mut group = c.benchmark_group("backward_step_by_depth");
    group.sample_size(10);
    for depth in [100u64, 500, 2000, 8000] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut sim = simulator(LONG_KERNEL, &config);
                for _ in 0..depth {
                    sim.step();
                }
                sim.step_back();
                black_box(sim.cycle())
            });
        });
    }
    group.finish();

    // Forward stepping at the same depths, for contrast.
    let mut group = c.benchmark_group("forward_step_by_depth");
    group.sample_size(10);
    for depth in [100u64, 8000] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut sim = simulator(LONG_KERNEL, &config);
            for _ in 0..depth {
                sim.step();
            }
            b.iter(|| {
                sim.step();
                black_box(sim.cycle())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backward);
criterion_main!(benches);
