//! **T1 — Table I**: load-test latency (median, 90th percentile) and
//! throughput for {Direct, Docker} × {30, 100} users.
//!
//! The paper's scenario: each user interactively simulates 40 steps of one of
//! two programs, 4 s ramp-up, 1 s think time, gzip enabled.  Here the think
//! and ramp times are scaled down (the queueing behaviour that produces the
//! table's shape comes from the per-request work and the worker pool, not
//! from the absolute think time), and the full paper-style rows are printed
//! alongside the Criterion measurement.
//!
//! Expected shape (paper: Direct 30 → 70.66/118 ms, 25.96 t/s; Direct 100 →
//! 680/1248.9 ms, 53.61 t/s; Docker rows slower): latency grows sharply from
//! 30 to 100 users, the containerized mode is slower than direct, and
//! throughput roughly doubles as the offered load grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvsim_bench::start_server;
use rvsim_loadgen::{run_load_test, Scenario};
use rvsim_server::DeploymentMode;

fn scenario(users: usize) -> Scenario {
    let mut s = Scenario::paper_scaled(users, 0.001);
    s.steps_per_user = 10; // keep each Criterion iteration in the hundreds of ms
    s
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_load_test");
    group.sample_size(10);

    println!("\nTable I reproduction (scaled timing; shapes comparable, absolutes not):");
    println!(
        "{:<10} {:>6} {:>12} {:>10} {:>14}",
        "mode", "users", "median[ms]", "p90[ms]", "tput[trans/s]"
    );

    for users in [30usize, 100] {
        for (label, mode) in [
            ("Direct", DeploymentMode::Direct),
            ("Docker", DeploymentMode::Containerized { request_overhead_us: 150 }),
        ] {
            // Print the paper-style row once, outside the measurement loop.
            let server = start_server(mode, true, 4);
            let report = run_load_test(&server, &scenario(users));
            println!(
                "{label:<10} {users:>6} {:>12.2} {:>10.2} {:>14.2}",
                report.median_latency_ms, report.p90_latency_ms, report.throughput_tps
            );
            server.shutdown();

            group.bench_with_input(
                BenchmarkId::new(label, users),
                &(mode, users),
                |b, &(mode, users)| {
                    b.iter(|| {
                        let server = start_server(mode, true, 4);
                        let report = run_load_test(&server, &scenario(users));
                        server.shutdown();
                        report.transactions
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
