//! Pipeline throughput: retired (committed) instructions per host second for
//! the benchmark suite (quicksort + the paper's sample programs) across the
//! scalar, 2-wide and 4-wide processor presets.
//!
//! This is the repo's tracked perf trajectory for the simulate loop: the same
//! matrix is emitted in machine-readable form by `rvsim-cli bench --json`
//! (`BENCH_pipeline.json`), so regressions in the hot path show up both here
//! and in CI artifacts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvsim_bench::{pipeline_bench_configs, pipeline_workloads};
use rvsim_core::Simulator;
use std::hint::black_box;

fn bench_retired_per_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_retired_per_second");
    for workload in pipeline_workloads() {
        for config in pipeline_bench_configs() {
            let mut sim = Simulator::from_assembly_with_memory(
                &workload.assembly,
                &config,
                workload.memory.clone(),
            )
            .expect("benchmark workload assembles");
            sim.run(50_000_000).expect("benchmark workload runs");
            let committed = sim.statistics().committed;
            group.throughput(Throughput::Elements(committed));
            group.bench_function(BenchmarkId::new(workload.name, &config.name), |b| {
                b.iter(|| {
                    sim.reset();
                    sim.run(50_000_000).expect("benchmark workload runs");
                    black_box(sim.cycle())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_retired_per_second);
criterion_main!(benches);
