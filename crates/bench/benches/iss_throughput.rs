//! Reference-ISS vs pipeline throughput comparison.
//!
//! The in-order interpreter in `rvsim-iss` exists for verification, but — as
//! GVSoC demonstrates for fast platform simulation — a plain interpreter also
//! doubles as the throughput ceiling a cycle-level model can be measured
//! against.  This bench reports retired instructions per host second for
//! both models on the same workloads, so pipeline slowdowns show up as a
//! ratio against the ISS baseline rather than as an absolute number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvsim_bench::{program_arithmetic, program_memory, program_mixed};
use rvsim_core::{ArchitectureConfig, Simulator};
use rvsim_iss::{generate_program, GenOptions, Iss};
use std::hint::black_box;

const BUDGET: u64 = 10_000_000;

fn workloads() -> Vec<(&'static str, String)> {
    vec![
        ("arithmetic", program_arithmetic()),
        ("memory", program_memory()),
        ("mixed", program_mixed()),
        ("generated", generate_program(42, &GenOptions::default())),
    ]
}

fn bench_retired_per_second(c: &mut Criterion) {
    let config = ArchitectureConfig::default();
    let mut group = c.benchmark_group("retired_instructions_per_second");

    for (label, program) in workloads() {
        // Both models retire the same instruction stream; use the ISS count
        // as the per-iteration element count.
        let mut probe = Iss::from_assembly(&program, &config).expect("assembles");
        let retired = probe.run(BUDGET).retired;
        group.throughput(Throughput::Elements(retired));

        group.bench_with_input(BenchmarkId::new("iss", label), &program, |b, program| {
            b.iter(|| {
                let mut iss = Iss::from_assembly(program, &config).expect("assembles");
                black_box(iss.run(BUDGET).retired)
            });
        });
        group.bench_with_input(BenchmarkId::new("pipeline", label), &program, |b, program| {
            b.iter(|| {
                let mut sim = Simulator::from_assembly(program, &config).expect("assembles");
                sim.run(BUDGET).expect("runs");
                black_box(sim.statistics().committed)
            });
        });
    }
    group.finish();
}

fn bench_cosim_harness(c: &mut Criterion) {
    // End-to-end cost of one differential co-simulation (generate + both
    // models + lockstep diff): what a CI batch pays per program.
    let harness = rvsim_iss::Cosim::new(ArchitectureConfig::default());
    let gen = GenOptions::default();
    c.bench_function("cosim_one_random_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let source = generate_program(seed, &gen);
            black_box(harness.run_source(&source).expect("co-simulates"))
        });
    });
}

criterion_group!(benches, bench_retired_per_second, bench_cosim_harness);
criterion_main!(benches);
