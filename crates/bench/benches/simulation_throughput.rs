//! Supporting microbenchmark: raw simulation speed in simulated cycles per
//! host second for the sample workloads and processor presets.  The paper's
//! CLI use case ("benchmarking of complex programs in an automated,
//! batch-processing manner", §II-E) depends on this number, and the JMH
//! profiling of §IV-A starts from it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rvsim_bench::{
    program_arithmetic, program_float, program_memory, run_to_completion, simulator,
};
use rvsim_cc::{compile, OptLevel};
use rvsim_core::ArchitectureConfig;
use std::hint::black_box;

fn bench_cycle_rate(c: &mut Criterion) {
    let config = ArchitectureConfig::default();
    let mut group = c.benchmark_group("simulated_cycles_per_second");

    for (label, program) in [
        ("arithmetic", program_arithmetic()),
        ("memory", program_memory()),
        ("float", program_float()),
    ] {
        let (cycles, _) = run_to_completion(&program, &config);
        group.throughput(Throughput::Elements(cycles));
        group.bench_with_input(BenchmarkId::from_parameter(label), &program, |b, program| {
            b.iter(|| black_box(run_to_completion(program, &config)));
        });
    }
    group.finish();
}

fn bench_whole_toolchain(c: &mut Criterion) {
    // Compile + assemble + simulate a C kernel: the full CLI batch path.
    let source = "
int main(void) {
    int s = 0;
    for (int i = 0; i < 200; i++) {
        s += i * 3 - (i >> 1);
    }
    return s;
}
";
    let mut group = c.benchmark_group("cli_batch_path");
    for opt in [OptLevel::O0, OptLevel::O3] {
        group.bench_with_input(
            BenchmarkId::new("compile_and_run", format!("{opt:?}")),
            &opt,
            |b, &opt| {
                b.iter(|| {
                    let output = compile(source, opt).unwrap();
                    let mut sim = simulator(&output.assembly, &ArchitectureConfig::default());
                    sim.run(10_000_000).unwrap();
                    black_box(sim.int_register(10))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cycle_rate, bench_whole_toolchain);
criterion_main!(benches);
