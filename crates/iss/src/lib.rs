//! # rvsim-iss — reference interpreter and differential co-simulation
//!
//! The verification spine of the workspace, following the methodology of
//! "Functional ISS-Driven Verification of Superscalar RISC-V Processors":
//! a minimal in-order, architecturally-exact interpreter ([`Iss`]) executes
//! the same programs as the superscalar pipeline, and a lockstep harness
//! ([`Cosim`]) diffs the two retirement streams to find bugs hiding in
//! instruction interleavings no hand-written test exercises.
//!
//! Three pieces:
//!
//! * [`Iss`] — single-cycle semantics over the shared instruction
//!   descriptors: registers, flat memory, pc and a halt reason.  Doubles as a
//!   fast throughput baseline (see `crates/bench/benches/iss_throughput.rs`).
//! * [`generate_program`] — a seeded random-program generator emitting valid,
//!   terminating assembly with ALU/branch/load-store/FP/pseudo-instruction
//!   mixes, loop and hazard patterns.
//! * [`Cosim`] — runs both models in lockstep, reports the first divergence
//!   with full context (program, seed, retirement index, disassembly window)
//!   and shrinks failing programs to minimal reproducers.
//!
//! ## Reproducing a divergence
//!
//! Every batch divergence prints the generator seed of the failing program.
//! To replay it:
//!
//! ```
//! use rvsim_core::ArchitectureConfig;
//! use rvsim_iss::{generate_program, Cosim, CosimOutcome, GenOptions};
//!
//! let source = generate_program(1234, &GenOptions::default()); // printed seed
//! let harness = Cosim::new(ArchitectureConfig::default());
//! match harness.run_source(&source).unwrap() {
//!     CosimOutcome::Match { .. } => {}                  // bug already fixed
//!     CosimOutcome::Divergence(d) => println!("{}", d.report),
//!     CosimOutcome::Inconclusive { reason } => println!("{reason}"),
//! }
//! ```
//!
//! From the command line the same run is `rvsim-cli cosim --programs 200
//! --seed 42` (see the CLI's `cosim --help`).

#![warn(missing_docs)]

pub mod cosim;
pub mod gen;
pub mod interp;

pub use cosim::{
    derive_seed, timings_for_seed, BatchDivergence, BatchReport, Cosim, CosimOutcome, Divergence,
};
pub use gen::{generate_program, GenOptions};
pub use interp::{InjectedFault, Iss, IssResult};
