//! Differential co-simulation: pipeline vs reference ISS in lockstep.
//!
//! [`Cosim`] runs the same program through the superscalar pipeline
//! (`rvsim_core::Simulator`, retirement trace enabled) and through the
//! in-order [`Iss`], then diffs the two retirement streams event by event and
//! the final architectural state register by register.  The first divergence
//! is reported with full context: retirement index, both events, a
//! disassembly window around the diverging instruction and the complete
//! program source.
//!
//! A failing random program is automatically *shrunk* to a minimal
//! reproducer: the harness greedily deletes source lines while the divergence
//! persists, so a report ends with the handful of instructions that actually
//! matter.

use crate::gen::{generate_program, GenOptions};
use crate::interp::{InjectedFault, Iss};
use rvsim_core::{ArchitectureConfig, HaltReason, RetireEvent, Simulator};
use rvsim_isa::RegisterId;
use rvsim_mem::MemoryTimings;
use serde::{Deserialize, Serialize};

/// Outcome of co-simulating one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CosimOutcome {
    /// Both models agree on every retirement and on the final state.
    Match {
        /// Instructions retired (identically) by both models.
        retired: u64,
    },
    /// One of the models hit its budget before the comparison finished; the
    /// prefix that did execute was identical.
    Inconclusive {
        /// What ran out.
        reason: String,
    },
    /// The models disagree.
    Divergence(Box<Divergence>),
}

/// A detected difference between the pipeline and the reference ISS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Retirement index of the first mismatching event, when the mismatch is
    /// in the trace (`None` for halt-reason or final-state mismatches).
    pub index: Option<u64>,
    /// One-line description of the difference.
    pub summary: String,
    /// Full human-readable report: events, disassembly window, program.
    pub report: String,
}

/// The lockstep comparison harness.
#[derive(Debug, Clone)]
pub struct Cosim {
    /// Architecture both models simulate.
    pub config: ArchitectureConfig,
    /// Cycle budget for the pipeline model.
    pub max_cycles: u64,
    /// Retired-instruction budget for the reference ISS.
    pub max_steps: u64,
    /// Deliberate ISS bug, injected by tests to prove the harness catches it.
    pub fault: Option<InjectedFault>,
    /// Randomize the memory-settings load/store latencies per generated
    /// program (derived from the program seed, so a printed seed still
    /// reproduces the exact run).  Timing must never change architectural
    /// results; this is what the randomization verifies.
    pub randomize_timings: bool,
}

/// Memory-settings latencies derived from a program seed: load and store
/// latencies each in `1..=8` cycles (the default machine uses 4/4), so a
/// batch sweeps fast-as-cache through slow main-memory configurations.
pub fn timings_for_seed(seed: u64) -> MemoryTimings {
    let z = derive_seed(seed, 0x4d45_4d54_494d_5347); // "MEMTIMSG" tag stream
    MemoryTimings { load_latency: 1 + (z & 7), store_latency: 1 + ((z >> 3) & 7) }
}

impl Cosim {
    /// Harness with default budgets (generous for generated programs, which
    /// retire a few thousand instructions).
    pub fn new(config: ArchitectureConfig) -> Self {
        Cosim {
            config,
            max_cycles: 200_000,
            max_steps: 200_000,
            fault: None,
            randomize_timings: true,
        }
    }

    /// A copy of this harness whose architecture uses `timings`.
    pub fn with_timings(&self, timings: MemoryTimings) -> Cosim {
        let mut harness = self.clone();
        harness.config.memory.timings = timings;
        harness
    }

    /// Co-simulate one assembly program.
    pub fn run_source(&self, source: &str) -> Result<CosimOutcome, String> {
        let mut sim = Simulator::from_assembly(source, &self.config)?;
        sim.set_retirement_trace(true);
        let sim_run = sim.run(self.max_cycles)?;

        let mut iss = Iss::new(sim.program().clone(), &self.config)?;
        if let Some(fault) = &self.fault {
            iss.inject_fault(fault.clone());
        }
        iss.set_retirement_trace(true);
        let iss_run = iss.run(self.max_steps);

        let pipeline_trace = sim.retirement_trace();
        let iss_trace = iss.retirement_trace();

        // 1. Event-by-event comparison of the common prefix.  A mismatch here
        // is definitive even if one model later hit its budget.
        let common = pipeline_trace.len().min(iss_trace.len());
        for i in 0..common {
            let (p, r) = (&pipeline_trace[i], &iss_trace[i]);
            if !p.architecturally_equal(r) {
                return Ok(CosimOutcome::Divergence(Box::new(
                    self.divergence_at(source, &sim, i, p, r),
                )));
            }
        }

        // 2. One model halted normally but the other retired past that
        // model's complete trace: the first extra retirement is a definitive
        // divergence even if the longer model later hit its budget — a
        // runaway pipeline (or ISS) must not hide behind "inconclusive".
        let sim_halted_normally = sim_run.halt != HaltReason::MaxCyclesReached;
        let iss_halted_normally = iss_run.halt != HaltReason::MaxCyclesReached;
        if pipeline_trace.len() != iss_trace.len() {
            let pipeline_longer = pipeline_trace.len() > iss_trace.len();
            let definitive =
                if pipeline_longer { iss_halted_normally } else { sim_halted_normally };
            if definitive {
                let summary = format!(
                    "pipeline retired {} instructions, ISS retired {}",
                    pipeline_trace.len(),
                    iss_trace.len()
                );
                let longer = if pipeline_longer {
                    ("pipeline", &pipeline_trace[common])
                } else {
                    ("ISS", &iss_trace[common])
                };
                let report = self.report(
                    source,
                    &sim,
                    &summary,
                    &format!("first extra event ({} only): {}", longer.0, longer.1),
                    longer.1.pc,
                );
                return Ok(CosimOutcome::Divergence(Box::new(Divergence {
                    index: Some(common as u64),
                    summary,
                    report,
                })));
            }
        }

        // 3. Budget exhaustion with an identical (non-definitive) prefix
        // proves nothing.
        if !sim_halted_normally {
            return Ok(CosimOutcome::Inconclusive {
                reason: format!("pipeline hit its {}-cycle budget", self.max_cycles),
            });
        }
        if !iss_halted_normally {
            return Ok(CosimOutcome::Inconclusive {
                reason: format!("ISS hit its {}-instruction budget", self.max_steps),
            });
        }

        // 4. Same trace, both halted: halt reasons and final state must agree.
        if sim_run.halt != *iss.halt_reason().expect("ISS halted") {
            let summary = format!(
                "halt reasons differ: pipeline {:?}, ISS {:?}",
                sim_run.halt,
                iss.halt_reason()
            );
            let report = self.report(source, &sim, &summary, "", sim.pc());
            return Ok(CosimOutcome::Divergence(Box::new(Divergence {
                index: None,
                summary,
                report,
            })));
        }
        for i in 0..32u8 {
            for reg in [RegisterId::x(i), RegisterId::f(i)] {
                let (p, r) = (sim.register(reg).bits, iss.register(reg).bits);
                if p != r {
                    let summary = format!(
                        "final state differs in {}: pipeline 0x{:x}, ISS 0x{:x}",
                        reg, p, r
                    );
                    let report = self.report(source, &sim, &summary, "", sim.pc());
                    return Ok(CosimOutcome::Divergence(Box::new(Divergence {
                        index: None,
                        summary,
                        report,
                    })));
                }
            }
        }

        // 5. Final memory image.  The trace records a store's *intent*; this
        // catches a commit/writeback path that put different bytes in memory
        // even when the corrupted location is never loaded again.
        let pipeline_mem = sim.memory().memory().bytes();
        let iss_mem = iss.memory().bytes();
        if let Some(offset) = first_difference(pipeline_mem, iss_mem) {
            let summary = format!(
                "final memory differs at 0x{:x}: pipeline 0x{:02x}, ISS 0x{:02x}",
                offset,
                pipeline_mem.get(offset).copied().unwrap_or(0),
                iss_mem.get(offset).copied().unwrap_or(0)
            );
            let report = self.report(source, &sim, &summary, "", sim.pc());
            return Ok(CosimOutcome::Divergence(Box::new(Divergence {
                index: None,
                summary,
                report,
            })));
        }

        Ok(CosimOutcome::Match { retired: pipeline_trace.len() as u64 })
    }

    fn divergence_at(
        &self,
        source: &str,
        sim: &Simulator,
        index: usize,
        pipeline: &RetireEvent,
        iss: &RetireEvent,
    ) -> Divergence {
        let summary = format!(
            "retirement #{index} differs at pc 0x{:x} ({})",
            pipeline.pc, pipeline.mnemonic
        );
        let detail =
            format!("pipeline: {pipeline}\n     ISS: {iss}\n(the ISS is the reference model)");
        let report = self.report(source, sim, &summary, &detail, pipeline.pc);
        Divergence { index: Some(index as u64), summary, report }
    }

    /// Build the full divergence report: summary, detail, a disassembly
    /// window around `pc` and the complete program source.
    fn report(
        &self,
        source: &str,
        sim: &Simulator,
        summary: &str,
        detail: &str,
        pc: u64,
    ) -> String {
        let mut out = String::new();
        out.push_str("=== co-simulation divergence ===\n");
        out.push_str(summary);
        out.push('\n');
        if !detail.is_empty() {
            out.push_str(detail);
            out.push('\n');
        }
        out.push_str("--- disassembly window ---\n");
        let program = sim.program();
        let center = (pc / 4) as i64;
        for idx in (center - 3).max(0)..(center + 4).min(program.len() as i64) {
            let ins = &program.instructions[idx as usize];
            let marker = if idx == center { "=>" } else { "  " };
            out.push_str(&format!(
                "{marker} 0x{:04x}  {:<28} ; line {}: {}\n",
                ins.address,
                render_instruction(ins),
                ins.source_line,
                ins.text.trim()
            ));
        }
        out.push_str("--- program ---\n");
        out.push_str(source.trim_end());
        out.push('\n');
        out
    }

    /// Shrink a diverging program to a minimal reproducer by greedily
    /// deleting source lines while the divergence persists.  Returns the
    /// shrunk source and its divergence, or `None` when `source` does not
    /// diverge in the first place.
    pub fn shrink(&self, source: &str) -> Option<(String, Divergence)> {
        // Deleting a loop-counter update turns a candidate into an infinite
        // loop that burns the whole cycle budget before being rejected, so
        // shrinking runs under a much smaller budget whenever the original
        // divergence still shows up there (it almost always does — generated
        // programs finish well within 25k cycles).
        let fast = Cosim { max_cycles: 25_000, max_steps: 25_000, ..self.clone() };
        let harness = if matches!(fast.run_source(source), Ok(CosimOutcome::Divergence(_))) {
            &fast
        } else {
            self
        };
        let diverges = |lines: &[String]| -> Option<Divergence> {
            let candidate = lines.join("\n");
            match harness.run_source(&candidate) {
                Ok(CosimOutcome::Divergence(d)) => Some(*d),
                _ => None,
            }
        };
        let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
        let mut best = diverges(&lines)?;
        loop {
            let mut removed_any = false;
            let mut i = 0;
            while i < lines.len() {
                let mut candidate = lines.clone();
                candidate.remove(i);
                if let Some(d) = diverges(&candidate) {
                    lines = candidate;
                    best = d;
                    removed_any = true;
                } else {
                    i += 1;
                }
            }
            if !removed_any {
                break;
            }
        }
        Some((lines.join("\n") + "\n", best))
    }

    /// Divergences shrunk per batch before the (expensive) shrinker is
    /// skipped — a systematic bug makes every program diverge, and three
    /// minimal reproducers are plenty to debug from.
    pub const SHRINK_LIMIT: usize = 3;

    /// Co-simulate `programs` random programs derived from `batch_seed`.
    /// The first [`Self::SHRINK_LIMIT`] divergences are shrunk to minimal
    /// reproducers; later ones are reported as-is.
    pub fn run_batch(&self, batch_seed: u64, programs: usize, gen: &GenOptions) -> BatchReport {
        let mut report = BatchReport {
            batch_seed,
            programs,
            gen_instructions: gen.body_instructions,
            gen_dfp: gen.dp_ops,
            matched: 0,
            inconclusive: 0,
            retired_instructions: 0,
            divergences: Vec::new(),
            errors: Vec::new(),
        };
        for index in 0..programs {
            let seed = derive_seed(batch_seed, index as u64);
            let source = generate_program(seed, gen);
            // Each program runs on its own seed-derived memory timings, so
            // the batch also exercises non-default memory configurations.
            // The shrinker runs on the same per-program harness, keeping the
            // reproducer's timing context.
            let harness = if self.randomize_timings {
                self.with_timings(timings_for_seed(seed))
            } else {
                self.clone()
            };
            match harness.run_source(&source) {
                Ok(CosimOutcome::Match { retired }) => {
                    report.matched += 1;
                    report.retired_instructions += retired;
                }
                Ok(CosimOutcome::Inconclusive { .. }) => report.inconclusive += 1,
                Ok(CosimOutcome::Divergence(divergence)) => {
                    let shrink_result = if report.divergences.len() < Self::SHRINK_LIMIT {
                        harness.shrink(&source)
                    } else {
                        None
                    };
                    let shrunk = shrink_result.is_some();
                    let (shrunk_program, shrunk_divergence) =
                        shrink_result.unwrap_or_else(|| (source.clone(), (*divergence).clone()));
                    report.divergences.push(BatchDivergence {
                        program_index: index,
                        program_seed: seed,
                        timings: harness.config.memory.timings,
                        divergence: *divergence,
                        shrunk,
                        shrunk_program,
                        shrunk_summary: shrunk_divergence.summary,
                    });
                }
                Err(e) => {
                    report.errors.push(format!("program {index} (seed {seed}): {e}"));
                }
            }
        }
        report
    }
}

/// Index of the first differing byte between two slices (length differences
/// count as a difference at the shorter length).
fn first_difference(a: &[u8], b: &[u8]) -> Option<usize> {
    let common = a.len().min(b.len());
    (0..common).find(|&i| a[i] != b[i]).or({
        if a.len() != b.len() {
            Some(common)
        } else {
            None
        }
    })
}

/// Per-program seed derivation (splitmix64 over the batch seed and index), so
/// one printed seed regenerates one exact program.
pub fn derive_seed(batch_seed: u64, index: u64) -> u64 {
    let mut z = batch_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One shrunk divergence found by a batch run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchDivergence {
    /// Index of the program within the batch.
    pub program_index: usize,
    /// Generator seed that reproduces the full program.
    pub program_seed: u64,
    /// Memory timings the diverging run used (seed-derived when the batch
    /// randomizes timings).
    pub timings: MemoryTimings,
    /// Divergence found in the full program.
    pub divergence: Divergence,
    /// Whether the shrinker actually ran (it is skipped past
    /// [`Cosim::SHRINK_LIMIT`] divergences per batch).
    pub shrunk: bool,
    /// Minimal reproducer after shrinking (the full program when `!shrunk`).
    pub shrunk_program: String,
    /// Summary of the divergence the shrunk program still exhibits.
    pub shrunk_summary: String,
}

/// Summary of a batch co-simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Seed the per-program seeds were derived from.
    pub batch_seed: u64,
    /// Programs generated.
    pub programs: usize,
    /// `GenOptions::body_instructions` used for every program (needed to
    /// regenerate a program from its printed seed).
    pub gen_instructions: usize,
    /// Whether the generator ran with D-extension mixes enabled
    /// (`GenOptions::dp_ops`) — replay needs `--dfp` when set.
    #[serde(default)]
    pub gen_dfp: bool,
    /// Programs where both models agreed completely.
    pub matched: usize,
    /// Programs where a budget ran out before the comparison finished.
    pub inconclusive: usize,
    /// Total instructions retired identically by both models.
    pub retired_instructions: u64,
    /// Shrunk divergences.
    pub divergences: Vec<BatchDivergence>,
    /// Programs that failed to assemble or simulate at all.
    pub errors: Vec<String>,
}

impl BatchReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "cosim: {} programs (seed {}), {} matched, {} inconclusive, {} errors, \
             {} instructions co-verified, {} divergences",
            self.programs,
            self.batch_seed,
            self.matched,
            self.inconclusive,
            self.errors.len(),
            self.retired_instructions,
            self.divergences.len()
        )
    }

    /// Full text report: summary plus every shrunk divergence.
    pub fn render_text(&self) -> String {
        let mut out = self.summary();
        out.push('\n');
        for error in &self.errors {
            out.push_str(&format!("error: {error}\n"));
        }
        for d in &self.divergences {
            let reproducer_label = if d.shrunk {
                format!("shrunk reproducer ({})", d.shrunk_summary)
            } else {
                "full program (shrink limit reached, not minimised)".to_string()
            };
            out.push_str(&format!(
                "\nprogram {} (replay: rvsim-cli cosim --program-seed {} --instructions {}{}, \
                 plus any --arch/--max-cycles/--inject-fault flags this batch used; \
                 memory timings load={} store={} are re-derived from the seed):\n{}\n\
                 --- {} ---\n{}",
                d.program_index,
                d.program_seed,
                self.gen_instructions,
                if self.gen_dfp { " --dfp" } else { "" },
                d.timings.load_latency,
                d.timings.store_latency,
                d.divergence.report,
                reproducer_label,
                d.shrunk_program
            ));
        }
        out
    }
}

fn render_instruction(ins: &rvsim_asm::AsmInstruction) -> String {
    use rvsim_asm::Operand;
    let ops: Vec<String> = ins
        .operands
        .iter()
        .map(|op| match op {
            Operand::Register(r) => r.to_string(),
            Operand::Immediate(v) => v.to_string(),
        })
        .collect();
    format!("{} {}", ins.mnemonic, ops.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> Cosim {
        Cosim::new(ArchitectureConfig::default())
    }

    #[test]
    fn identical_models_match_on_handwritten_program() {
        let outcome = harness()
            .run_source(
                "buf:
                    .zero 32
                main:
                    la   t0, buf
                    li   t1, 77
                    sw   t1, 0(t0)
                    lw   a0, 0(t0)
                    addi a0, a0, 1
                    ret
                ",
            )
            .unwrap();
        match outcome {
            CosimOutcome::Match { retired } => assert!(retired >= 6),
            other => panic!("expected a match, got {other:?}"),
        }
    }

    #[test]
    fn exception_programs_agree() {
        let outcome = harness()
            .run_source(
                "main:
                    li  a0, 9
                    li  a1, 0
                    div a2, a0, a1
                    ret
                ",
            )
            .unwrap();
        assert!(matches!(outcome, CosimOutcome::Match { .. }), "got {outcome:?}");
    }

    #[test]
    fn batch_of_random_programs_has_zero_divergences() {
        let report = harness().run_batch(42, 40, &GenOptions::default());
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        assert!(report.divergences.is_empty(), "divergences found:\n{}", report.render_text());
        assert_eq!(report.matched + report.inconclusive, 40);
        assert!(report.matched >= 38, "too many inconclusive runs");
        assert!(report.retired_instructions > 1000);
    }

    #[test]
    fn injected_fault_is_caught_and_shrunk_to_a_minimal_reproducer() {
        let mut harness = harness();
        harness.fault = Some(InjectedFault { mnemonic: "xor".into(), xor_bits: 1 });
        // Small ALU-heavy programs keep the greedy shrinker cheap in debug
        // builds while still tripping over a corrupted xor almost surely.
        let gen = GenOptions {
            body_instructions: 12,
            fp_ops: false,
            calls: false,
            inner_loops: false,
            ..Default::default()
        };
        let mut caught = None;
        for batch_seed in 1..=4u64 {
            let report = harness.run_batch(batch_seed, 8, &gen);
            if let Some(d) = report.divergences.into_iter().next() {
                caught = Some(d);
                break;
            }
        }
        let d = caught.expect("a seeded xor bug must be caught within a few batches");
        // The report names the culprit and the reproducer is genuinely small.
        assert!(d.divergence.report.contains("xor"), "report:\n{}", d.divergence.report);
        assert!(d.shrunk_summary.contains("differs"), "{}", d.shrunk_summary);
        let original_lines = generate_program(d.program_seed, &gen).lines().count();
        let shrunk_lines = d.shrunk_program.lines().count();
        assert!(
            shrunk_lines <= 6 && shrunk_lines < original_lines,
            "expected a minimal reproducer, got {shrunk_lines} lines (from {original_lines}):\n{}",
            d.shrunk_program
        );
        // The acceptance criterion asks for the reproducer to be printed.
        println!("shrunk reproducer:\n{}", d.shrunk_program);
    }

    #[test]
    fn budget_limited_shorter_side_is_inconclusive_not_divergent() {
        // A model that simply ran out of budget with a shorter (matching)
        // trace proves nothing: the other model finishing is not a runaway.
        let source = "main:
                li   t0, 50
            loop:
                addi t0, t0, -1
                bnez t0, loop
                ret
            ";
        let mut harness = harness();
        harness.max_steps = 5; // ISS stops after 5 retirements
        match harness.run_source(source).unwrap() {
            CosimOutcome::Inconclusive { reason } => {
                assert!(reason.contains("ISS"), "reason: {reason}")
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
        let mut harness = self::harness();
        harness.max_cycles = 10; // pipeline stops after 10 cycles
        match harness.run_source(source).unwrap() {
            CosimOutcome::Inconclusive { reason } => {
                assert!(reason.contains("pipeline"), "reason: {reason}")
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn d_heavy_batch_has_zero_divergences() {
        // The D-extension mix through the full differential harness: the
        // out-of-order pipeline and the in-order ISS must agree on every
        // double-precision retirement, on every machine width.
        let gen = GenOptions { body_instructions: 20, ..GenOptions::d_heavy() };
        for config in [ArchitectureConfig::default(), ArchitectureConfig::wide()] {
            let name = config.name.clone();
            let report = Cosim::new(config).run_batch(27, 12, &gen);
            assert!(report.errors.is_empty(), "{name} errors: {:?}", report.errors);
            assert!(report.divergences.is_empty(), "{name} divergences:\n{}", report.render_text());
            assert!(report.matched >= 10, "{name}: too many inconclusive runs");
            assert!(report.gen_dfp, "batch must record the D-heavy generator");
        }
    }

    #[test]
    fn scalar_and_wide_configs_also_match() {
        // The reference model is width-agnostic; the pipeline's schedule
        // changes completely between a single-issue and a 4-wide machine,
        // but the retirement stream must not.
        let gen = GenOptions { body_instructions: 20, ..Default::default() };
        for config in [ArchitectureConfig::scalar(), ArchitectureConfig::wide()] {
            let name = config.name.clone();
            let report = Cosim::new(config).run_batch(11, 10, &gen);
            assert!(report.errors.is_empty(), "{name} errors: {:?}", report.errors);
            assert!(report.divergences.is_empty(), "{name} divergences:\n{}", report.render_text());
        }
    }

    #[test]
    fn seed_derived_timings_are_deterministic_in_range_and_spread() {
        assert_eq!(timings_for_seed(7), timings_for_seed(7));
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let t = timings_for_seed(seed);
            assert!((1..=8).contains(&t.load_latency), "load latency {t:?}");
            assert!((1..=8).contains(&t.store_latency), "store latency {t:?}");
            distinct.insert((t.load_latency, t.store_latency));
        }
        assert!(distinct.len() > 8, "timings must actually vary, got {distinct:?}");
    }

    #[test]
    fn randomized_timings_change_schedules_but_not_results() {
        // The same program must match on every timing configuration the
        // randomizer can produce — and slow timings must actually cost
        // cycles (i.e. the knob is wired through to the pipeline).
        let source = generate_program(3, &GenOptions::default());
        // Disable the cache so every access pays the configured latency —
        // with the default cache most accesses hit and timings barely show.
        let mut uncached = harness();
        uncached.config.cache.enabled = false;
        let fast = uncached.with_timings(MemoryTimings { load_latency: 1, store_latency: 1 });
        let slow = uncached.with_timings(MemoryTimings { load_latency: 8, store_latency: 8 });
        for h in [&fast, &slow] {
            match h.run_source(&source).unwrap() {
                CosimOutcome::Match { retired } => assert!(retired > 10),
                other => panic!("timing variation must not diverge: {other:?}"),
            }
        }
        // A serially dependent load chain cannot hide the latency: the knob
        // must be wired through to the pipeline's schedule.
        let chain = "buf:
    .word 5
main:
    la   t0, buf
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    lw   t2, 0(t0)
    addi t2, t2, 1
    sw   t2, 0(t0)
    lw   a0, 0(t0)
    ret
";
        let cycles = |h: &Cosim| {
            let mut sim = Simulator::from_assembly(chain, &h.config).unwrap();
            sim.run(200_000).unwrap().cycles
        };
        assert!(
            cycles(&slow) > cycles(&fast),
            "slow memory timings must lengthen a dependent-load schedule"
        );
    }

    #[test]
    fn derived_seeds_are_spread() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(derive_seed(42, 1), b, "derivation is deterministic");
    }

    #[test]
    fn batch_report_serializes() {
        let report = harness().run_batch(7, 3, &GenOptions::default());
        let json = serde_json::to_string(&report).unwrap();
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(report.summary().contains("3 programs"));
    }
}
