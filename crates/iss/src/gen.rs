//! Seeded random-program generator for differential testing.
//!
//! [`generate_program`] emits valid assembly over the supported ISA subset —
//! ALU, branch, load/store, M- and F-extension and pseudo-instruction mixes
//! with loop, call and hazard patterns — from a 64-bit seed.  The same seed
//! always produces the same program, so a divergence report quoting its seed
//! is a complete reproducer.
//!
//! Termination is guaranteed by construction: control flow consists of the
//! counted outer loop, counted inner loops, strictly forward conditional
//! branches and calls to straight-line leaf functions.  Registers with a
//! structural role (`sp`, `ra`, the loop counters `s0`/`s10`, the data base
//! `s1`) are excluded from the random destination pool.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Knobs controlling the shape of generated programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenOptions {
    /// Random items per outer-loop body (an item expands to 1–6 instructions).
    pub body_instructions: usize,
    /// Emit loads and stores (data buffer and stack slots).
    pub memory_ops: bool,
    /// Emit F-extension instructions.
    pub fp_ops: bool,
    /// Emit D-extension (double-precision) instructions inside the FP and
    /// FP-memory mixes.  Only effective while `fp_ops` is on: doubles share
    /// the FP item slots, biased ~3:1 towards the D variants, plus `fld`/
    /// `fsd` traffic and cross-precision `fcvt.d.s`/`fcvt.s.d` chains.
    pub dp_ops: bool,
    /// Emit M-extension multiply/divide instructions.
    pub mul_div: bool,
    /// Emit `jal`/`jalr` calls to generated leaf functions.
    pub calls: bool,
    /// Emit counted inner loops.
    pub inner_loops: bool,
    /// Maximum trip count of the outer loop (inner loops stay below 5).
    pub max_trip_count: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            body_instructions: 32,
            memory_ops: true,
            fp_ops: true,
            dp_ops: false,
            mul_div: true,
            calls: true,
            inner_loops: true,
            max_trip_count: 5,
        }
    }
}

impl GenOptions {
    /// The D-heavy preset: the default mix with double-precision enabled,
    /// so most FP items become D-extension instructions.  This is the
    /// fourth batch of the default `cosim` run.
    pub fn d_heavy() -> Self {
        GenOptions { dp_ops: true, ..Default::default() }
    }
}

/// Integer registers the generator may freely overwrite.
const INT_POOL: &[&str] = &[
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s2",
    "s3", "s4", "s5", "s6", "s7",
];

/// Floating-point registers the generator may freely overwrite.
const FP_POOL: &[&str] =
    &["ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fa0", "fa1", "fa2", "fa3"];

/// Size of the scratch data buffer (`buf`) in bytes.
const BUF_BYTES: u64 = 256;

struct Generator {
    rng: StdRng,
    opts: GenOptions,
    lines: Vec<String>,
    labels: usize,
    functions: usize,
}

/// Generate a deterministic, terminating assembly program from `seed`.
pub fn generate_program(seed: u64, opts: &GenOptions) -> String {
    let mut g = Generator {
        rng: StdRng::seed_from_u64(seed),
        opts: opts.clone(),
        lines: Vec::new(),
        labels: 0,
        functions: if opts.calls { 1 + (seed as usize % 2) } else { 0 },
    };
    g.emit_program(seed);
    g.lines.join("\n") + "\n"
}

impl Generator {
    fn push(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    fn int_reg(&mut self) -> &'static str {
        INT_POOL[self.rng.random_range(0..INT_POOL.len())]
    }

    fn fp_reg(&mut self) -> &'static str {
        FP_POOL[self.rng.random_range(0..FP_POOL.len())]
    }

    fn imm12(&mut self) -> i64 {
        self.rng.random_range(-2048i64..2048)
    }

    fn fresh_label(&mut self, prefix: &str) -> String {
        self.labels += 1;
        format!("{prefix}_{}", self.labels)
    }

    fn emit_program(&mut self, seed: u64) {
        self.push(format!("# rvsim-iss random program, seed {seed}"));
        self.push("buf:");
        self.push(format!("    .zero {BUF_BYTES}"));
        self.push("main:");
        self.push("    addi sp, sp, -32");
        self.push("    sw   ra, 28(sp)");
        self.push("    la   s1, buf");
        // Seed a handful of pool registers with non-trivial values so early
        // instructions have real data hazards to chew on.
        for _ in 0..6 {
            let rd = self.int_reg();
            let value: i64 = if self.rng.random_range(0..4) == 0 {
                self.rng.random_range(-2_000_000i64..2_000_000)
            } else {
                self.imm12()
            };
            self.push(format!("    li   {rd}, {value}"));
        }
        if self.opts.fp_ops {
            for _ in 0..2 {
                let (fd, rs) = (self.fp_reg(), self.int_reg());
                self.push(format!("    fcvt.s.w {fd}, {rs}"));
            }
            if self.opts.dp_ops {
                // Seed double-typed registers too, so the D mix starts with
                // real double data instead of reinterpreting float bits.
                for _ in 0..2 {
                    let (fd, rs) = (self.fp_reg(), self.int_reg());
                    self.push(format!("    fcvt.d.w {fd}, {rs}"));
                }
            }
        }
        let trips = self.rng.random_range(2..self.opts.max_trip_count.max(2) + 1);
        self.push(format!("    li   s0, {trips}"));
        self.push("outer:");
        for _ in 0..self.opts.body_instructions {
            self.emit_item(true);
        }
        self.push("    addi s0, s0, -1");
        self.push("    bnez s0, outer");
        self.push("    lw   ra, 28(sp)");
        self.push("    addi sp, sp, 32");
        self.push("    ret");
        for f in 0..self.functions {
            self.push(format!("func_{f}:"));
            for _ in 0..self.rng.random_range(3..7usize) {
                self.emit_item(false);
            }
            self.push("    ret");
        }
    }

    /// Emit one random item.  `top_level` items may open control flow
    /// (forward branches, inner loops, calls); nested items stay straight-line.
    fn emit_item(&mut self, top_level: bool) {
        let roll = self.rng.random_range(0..100u32);
        match roll {
            0..=34 => self.emit_alu(),
            35..=49 if self.opts.memory_ops => self.emit_memory(),
            50..=61 if self.opts.fp_ops => self.emit_fp(),
            62..=71 if self.opts.mul_div => self.emit_mul_div(),
            72..=81 if top_level => self.emit_forward_branch(),
            82..=87 if top_level && self.opts.inner_loops => self.emit_inner_loop(),
            88..=93 if top_level && self.functions > 0 => self.emit_call(),
            _ => self.emit_alu(),
        }
    }

    fn emit_alu(&mut self) {
        let kind = self.rng.random_range(0..5u32);
        match kind {
            0 => {
                const OPS: &[&str] =
                    &["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                // Rarely target x0 to exercise the discarded-write path.
                let rd = if self.rng.random_range(0..24) == 0 { "zero" } else { self.int_reg() };
                let (rs1, rs2) = (self.int_reg(), self.int_reg());
                self.push(format!("    {op:<5} {rd}, {rs1}, {rs2}"));
            }
            1 => {
                const OPS: &[&str] = &["addi", "andi", "ori", "xori", "slti", "sltiu"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let (rd, rs1, imm) = (self.int_reg(), self.int_reg(), self.imm12());
                self.push(format!("    {op:<5} {rd}, {rs1}, {imm}"));
            }
            2 => {
                const OPS: &[&str] = &["slli", "srli", "srai"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let (rd, rs1) = (self.int_reg(), self.int_reg());
                let shamt = self.rng.random_range(0..32u32);
                self.push(format!("    {op:<5} {rd}, {rs1}, {shamt}"));
            }
            3 => {
                let rd = self.int_reg();
                if self.rng.random_range(0..2) == 0 {
                    let upper = self.rng.random_range(0..0x10_0000u64);
                    self.push(format!("    lui  {rd}, {upper}"));
                } else {
                    let upper = self.rng.random_range(0..16u64);
                    self.push(format!("    auipc {rd}, {upper}"));
                }
            }
            _ => {
                const OPS: &[&str] = &["mv", "neg", "not", "seqz", "snez", "sltz", "sgtz"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let (rd, rs1) = (self.int_reg(), self.int_reg());
                self.push(format!("    {op:<5} {rd}, {rs1}"));
            }
        }
    }

    fn emit_mul_div(&mut self) {
        let kind = self.rng.random_range(0..10u32);
        let (rd, rs1, rs2) = (self.int_reg(), self.int_reg(), self.int_reg());
        match kind {
            0..=4 => {
                const OPS: &[&str] = &["mul", "mulh", "mulhu", "mulhsu"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                self.push(format!("    {op:<5} {rd}, {rs1}, {rs2}"));
            }
            _ => {
                const OPS: &[&str] = &["div", "divu", "rem", "remu"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                if self.rng.random_range(0..16) == 0 {
                    // Rarely leave the divisor unguarded: a division by zero
                    // must raise the same precise exception in both models.
                    self.push(format!("    {op:<5} {rd}, {rs1}, {rs2}"));
                } else {
                    let guard = self.int_reg();
                    self.push(format!("    ori  {guard}, {rs2}, 1"));
                    self.push(format!("    {op:<5} {rd}, {rs1}, {guard}"));
                }
            }
        }
    }

    fn emit_memory(&mut self) {
        let kind = self.rng.random_range(0..8u32);
        match kind {
            0 | 1 => {
                // Word store + load to the shared buffer (store-to-load
                // forwarding and memory disambiguation fodder).
                let off = self.rng.random_range(0..BUF_BYTES / 4) * 4;
                if self.rng.random_range(0..2) == 0 {
                    let rs = self.int_reg();
                    self.push(format!("    sw   {rs}, {off}(s1)"));
                } else {
                    let rd = self.int_reg();
                    self.push(format!("    lw   {rd}, {off}(s1)"));
                }
            }
            2 => {
                let off = self.rng.random_range(0..BUF_BYTES / 2) * 2;
                const OPS: &[&str] = &["sh", "lh", "lhu"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let r = self.int_reg();
                self.push(format!("    {op:<4} {r}, {off}(s1)"));
            }
            3 => {
                let off = self.rng.random_range(0..BUF_BYTES);
                const OPS: &[&str] = &["sb", "lb", "lbu"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let r = self.int_reg();
                self.push(format!("    {op:<4} {r}, {off}(s1)"));
            }
            4 => {
                // Stack-slot traffic below the saved ra at 28(sp).
                let off = self.rng.random_range(0..6u64) * 4;
                let r = self.int_reg();
                if self.rng.random_range(0..2) == 0 {
                    self.push(format!("    sw   {r}, {off}(sp)"));
                } else {
                    self.push(format!("    lw   {r}, {off}(sp)"));
                }
            }
            5 => {
                // Computed base address: an address-generation hazard.
                let base = self.int_reg();
                let off = self.rng.random_range(0..BUF_BYTES / 4) * 4;
                let r = self.int_reg();
                self.push(format!("    addi {base}, s1, {off}"));
                if self.rng.random_range(0..2) == 0 {
                    self.push(format!("    sw   {r}, 0({base})"));
                } else {
                    self.push(format!("    lw   {r}, 0({base})"));
                }
            }
            _ if self.opts.fp_ops => {
                if self.opts.dp_ops && self.rng.random_range(0..4) < 3 {
                    // Double-precision traffic: 8-byte aligned slots.
                    let off = self.rng.random_range(0..BUF_BYTES / 8) * 8;
                    let f = self.fp_reg();
                    if self.rng.random_range(0..2) == 0 {
                        self.push(format!("    fsd  {f}, {off}(s1)"));
                    } else {
                        self.push(format!("    fld  {f}, {off}(s1)"));
                    }
                } else {
                    let off = self.rng.random_range(0..BUF_BYTES / 4) * 4;
                    let f = self.fp_reg();
                    if self.rng.random_range(0..2) == 0 {
                        self.push(format!("    fsw  {f}, {off}(s1)"));
                    } else {
                        self.push(format!("    flw  {f}, {off}(s1)"));
                    }
                }
            }
            _ => {
                let off = self.rng.random_range(0..BUF_BYTES / 4) * 4;
                let r = self.int_reg();
                self.push(format!("    sw   {r}, {off}(s1)"));
            }
        }
    }

    fn emit_fp(&mut self) {
        // With doubles enabled the FP slot is D-heavy: three out of four
        // items pick the double-precision variant.
        if self.opts.dp_ops && self.rng.random_range(0..4) < 3 {
            self.emit_fp_double();
            return;
        }
        let kind = self.rng.random_range(0..10u32);
        match kind {
            0..=3 => {
                const OPS: &[&str] =
                    &["fadd.s", "fsub.s", "fmul.s", "fmin.s", "fmax.s", "fsgnj.s", "fsgnjn.s"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let (fd, f1, f2) = (self.fp_reg(), self.fp_reg(), self.fp_reg());
                self.push(format!("    {op} {fd}, {f1}, {f2}"));
            }
            4 => {
                let (fd, f1, f2, f3) = (self.fp_reg(), self.fp_reg(), self.fp_reg(), self.fp_reg());
                const OPS: &[&str] = &["fmadd.s", "fmsub.s", "fnmadd.s", "fnmsub.s"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                self.push(format!("    {op} {fd}, {f1}, {f2}, {f3}"));
            }
            5 => {
                let (fd, rs) = (self.fp_reg(), self.int_reg());
                self.push(format!("    fcvt.s.w {fd}, {rs}"));
            }
            6 => {
                let (rd, fs) = (self.int_reg(), self.fp_reg());
                self.push(format!("    fcvt.w.s {rd}, {fs}"));
            }
            7 => {
                const OPS: &[&str] = &["feq.s", "flt.s", "fle.s"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let (rd, f1, f2) = (self.int_reg(), self.fp_reg(), self.fp_reg());
                self.push(format!("    {op} {rd}, {f1}, {f2}"));
            }
            8 => {
                let (fd, f1) = (self.fp_reg(), self.fp_reg());
                // fabs first so fsqrt sees a non-negative input most runs;
                // NaN propagation is bit-identical anyway.
                self.push(format!("    fabs.s {fd}, {f1}"));
                self.push(format!("    fsqrt.s {fd}, {fd}"));
            }
            _ => {
                let (fd, f1, f2) = (self.fp_reg(), self.fp_reg(), self.fp_reg());
                self.push(format!("    fdiv.s {fd}, {f1}, {f2}"));
            }
        }
    }

    fn emit_fp_double(&mut self) {
        let kind = self.rng.random_range(0..10u32);
        match kind {
            0..=3 => {
                const OPS: &[&str] = &["fadd.d", "fsub.d", "fmul.d", "fmin.d", "fmax.d"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let (fd, f1, f2) = (self.fp_reg(), self.fp_reg(), self.fp_reg());
                self.push(format!("    {op} {fd}, {f1}, {f2}"));
            }
            4 => {
                const OPS: &[&str] = &["fmadd.d", "fmsub.d"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let (fd, f1, f2, f3) = (self.fp_reg(), self.fp_reg(), self.fp_reg(), self.fp_reg());
                self.push(format!("    {op} {fd}, {f1}, {f2}, {f3}"));
            }
            5 => {
                let (fd, rs) = (self.fp_reg(), self.int_reg());
                self.push(format!("    fcvt.d.w {fd}, {rs}"));
            }
            6 => {
                let (rd, fs) = (self.int_reg(), self.fp_reg());
                self.push(format!("    fcvt.w.d {rd}, {fs}"));
            }
            7 => {
                // Cross-precision conversion chains: the registers flip
                // between float- and double-typed values mid-program.
                let (fd, fs) = (self.fp_reg(), self.fp_reg());
                if self.rng.random_range(0..2) == 0 {
                    self.push(format!("    fcvt.d.s {fd}, {fs}"));
                } else {
                    self.push(format!("    fcvt.s.d {fd}, {fs}"));
                }
            }
            8 => {
                const OPS: &[&str] = &["feq.d", "flt.d", "fle.d"];
                let op = OPS[self.rng.random_range(0..OPS.len())];
                let (rd, f1, f2) = (self.int_reg(), self.fp_reg(), self.fp_reg());
                self.push(format!("    {op} {rd}, {f1}, {f2}"));
            }
            _ => {
                let (fd, f1, f2) = (self.fp_reg(), self.fp_reg(), self.fp_reg());
                if self.rng.random_range(0..3) == 0 {
                    // Convert-then-sqrt keeps most inputs non-negative; NaN
                    // propagation is bit-identical across the models anyway.
                    self.push(format!("    fmul.d {fd}, {f1}, {f1}"));
                    self.push(format!("    fsqrt.d {fd}, {fd}"));
                } else {
                    self.push(format!("    fdiv.d {fd}, {f1}, {f2}"));
                }
            }
        }
    }

    fn emit_forward_branch(&mut self) {
        let label = self.fresh_label("fwd");
        let kind = self.rng.random_range(0..2u32);
        if kind == 0 {
            const OPS: &[&str] = &["beq", "bne", "blt", "bge", "bltu", "bgeu"];
            let op = OPS[self.rng.random_range(0..OPS.len())];
            let (rs1, rs2) = (self.int_reg(), self.int_reg());
            self.push(format!("    {op:<5} {rs1}, {rs2}, {label}"));
        } else {
            const OPS: &[&str] = &["beqz", "bnez", "blez", "bgez", "bltz", "bgtz"];
            let op = OPS[self.rng.random_range(0..OPS.len())];
            let rs1 = self.int_reg();
            self.push(format!("    {op:<5} {rs1}, {label}"));
        }
        for _ in 0..self.rng.random_range(1..4usize) {
            self.emit_item(false);
        }
        self.push(format!("{label}:"));
    }

    fn emit_inner_loop(&mut self) {
        let label = self.fresh_label("inner");
        let trips = self.rng.random_range(2..5u32);
        self.push(format!("    li   s10, {trips}"));
        self.push(format!("{label}:"));
        for _ in 0..self.rng.random_range(2..5usize) {
            self.emit_item(false);
        }
        self.push("    addi s10, s10, -1");
        self.push(format!("    bnez s10, {label}"));
    }

    fn emit_call(&mut self) {
        let f = self.rng.random_range(0..self.functions);
        if self.rng.random_range(0..3) == 0 {
            // Indirect call through a register: exercises jalr + BTB.
            let t = self.int_reg();
            self.push(format!("    la   {t}, func_{f}"));
            self.push(format!("    jalr ra, {t}, 0"));
        } else {
            self.push(format!("    call func_{f}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Iss;
    use rvsim_core::{ArchitectureConfig, HaltReason};

    #[test]
    fn same_seed_same_program() {
        let opts = GenOptions::default();
        assert_eq!(generate_program(7, &opts), generate_program(7, &opts));
        assert_ne!(generate_program(7, &opts), generate_program(8, &opts));
    }

    #[test]
    fn generated_programs_assemble_and_terminate() {
        let config = ArchitectureConfig::default();
        let opts = GenOptions::default();
        for seed in 0..30u64 {
            let source = generate_program(seed, &opts);
            let mut iss = Iss::from_assembly(&source, &config)
                .unwrap_or_else(|e| panic!("seed {seed} does not assemble: {e}\n{source}"));
            let result = iss.run(1_000_000);
            assert_ne!(
                result.halt,
                HaltReason::MaxCyclesReached,
                "seed {seed} does not terminate:\n{source}"
            );
            assert!(result.retired > 10, "seed {seed} retired almost nothing");
        }
    }

    #[test]
    fn option_gates_suppress_instruction_classes() {
        let opts = GenOptions {
            memory_ops: false,
            fp_ops: false,
            mul_div: false,
            calls: false,
            inner_loops: false,
            ..Default::default()
        };
        for seed in 0..10u64 {
            let source = generate_program(seed, &opts);
            assert!(!source.contains("mul"), "seed {seed}:\n{source}");
            assert!(!source.contains(" div"), "seed {seed}:\n{source}");
            assert!(!source.contains("fadd"), "seed {seed}:\n{source}");
            assert!(!source.contains("call"), "seed {seed}:\n{source}");
            assert!(!source.contains("inner"), "seed {seed}:\n{source}");
            // The only stores left are the structural prologue/epilogue ones.
            assert!(!source.contains("(s1)"), "seed {seed}:\n{source}");
        }
    }

    #[test]
    fn d_heavy_preset_emits_double_precision_mixes_that_terminate() {
        let config = ArchitectureConfig::default();
        let opts = GenOptions::d_heavy();
        let all: String = (0..12u64).map(|s| generate_program(s, &opts)).collect();
        // The preset must actually exercise the D extension end to end:
        // arithmetic, memory traffic and cross-precision conversions.
        assert!(all.contains(".d "), "no double-precision ops:\n{all}");
        assert!(all.contains("fld") && all.contains("fsd"), "no fld/fsd traffic");
        assert!(all.contains("fcvt.d.s") || all.contains("fcvt.s.d"), "no cross conversions");
        for seed in 0..12u64 {
            let source = generate_program(seed, &opts);
            let mut iss = Iss::from_assembly(&source, &config)
                .unwrap_or_else(|e| panic!("seed {seed} does not assemble: {e}\n{source}"));
            let result = iss.run(1_000_000);
            assert_ne!(
                result.halt,
                HaltReason::MaxCyclesReached,
                "seed {seed} does not terminate:\n{source}"
            );
        }
        // Without dp_ops the same seeds emit no D-extension instructions.
        let plain: String =
            (0..12u64).map(|s| generate_program(s, &GenOptions::default())).collect();
        assert!(!plain.contains(".d "), "default mix must stay single-precision");
        assert!(!plain.contains("fld"), "default mix must stay single-precision");
    }

    #[test]
    fn programs_exercise_hazard_patterns() {
        // Over a small seed range the default mix must produce branches,
        // memory traffic and loops — the patterns the harness exists for.
        let opts = GenOptions::default();
        let all: String = (0..10u64).map(|s| generate_program(s, &opts)).collect();
        assert!(all.contains("outer:"));
        assert!(all.contains("fwd_"));
        assert!(all.contains("inner_"));
        assert!(all.contains("(s1)"));
        assert!(all.contains("func_0:"));
        assert!(all.contains("jalr"));
    }
}
