//! The in-order, architecturally-exact reference interpreter.
//!
//! [`Iss`] executes the same assembled [`Program`] against the same
//! [`ArchitectureConfig`] as the pipeline simulator, but with single-cycle
//! semantics: one instruction per step, no renaming, no speculation, no
//! buffers.  Its state is purely architectural — 32+32 registers, flat main
//! memory, a program counter and a halt reason — which is exactly the state
//! the two models must agree on at every retirement.
//!
//! The interpreter deliberately reuses the *predecoded* instruction layer
//! shared with the pipeline ([`PredecodedProgram`]): dispatch is keyed by
//! dense `DescriptorId` and semantics run as compiled postfix expressions,
//! so divergences point at the pipeline machinery under test — renaming,
//! forwarding, speculation, flush recovery, store/load ordering — rather
//! than at duplicated ALU tables.  The memory access conversions are
//! implemented independently and must mirror the pipeline's commit/convert
//! rules bit for bit.

use rvsim_asm::{assemble, AssemblerOptions, Program};
use rvsim_core::{ArchitectureConfig, HaltReason, MemEffect, PredecodedProgram, RetireEvent};
use rvsim_isa::{
    Bindings, DataType, Exception, FunctionalClass, InstructionSet, RegisterId, RegisterValue, Sym,
    TypedValue, SYM_PC, SYM_RS2,
};
use rvsim_mem::{MainMemory, MemorySettings};
use std::sync::Arc;

/// A deliberately wrong result transformation, used by tests to prove the
/// co-simulation harness catches real bugs: whenever the ISS retires an
/// instruction with this mnemonic, the destination register bits are XOR-ed
/// with `xor_bits` before being written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Mnemonic the fault applies to (after pseudo-instruction expansion).
    pub mnemonic: String,
    /// Bits flipped in the destination value.
    pub xor_bits: u64,
}

/// Result of [`Iss::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssResult {
    /// Why execution stopped.
    pub halt: HaltReason,
    /// Instructions retired in total.
    pub retired: u64,
}

/// The in-order reference interpreter.
#[derive(Debug)]
pub struct Iss {
    program: Program,
    predecoded: Arc<PredecodedProgram>,
    int_regs: [RegisterValue; 32],
    fp_regs: [RegisterValue; 32],
    mem: MainMemory,
    pc: u64,
    retired: u64,
    halted: Option<HaltReason>,
    main_returned: bool,
    program_end: u64,
    trace_enabled: bool,
    trace: Vec<RetireEvent>,
    /// Interned mnemonic + xor bits of the injected fault, resolved once.
    fault: Option<(Sym, u64)>,
}

impl Iss {
    // ------------------------------------------------------------ construction

    /// Build an interpreter from an already assembled [`Program`].
    pub fn new(program: Program, config: &ArchitectureConfig) -> Result<Self, String> {
        Self::with_memory(program, config, MemorySettings::new())
    }

    /// Build an interpreter with user-defined memory arrays, mirroring the
    /// layout `Simulator::with_memory` uses (stack, then user arrays, then
    /// program data).
    pub fn with_memory(
        program: Program,
        config: &ArchitectureConfig,
        memory_settings: MemorySettings,
    ) -> Result<Self, String> {
        Self::with_parts(InstructionSet::rv32imf(), program, config, memory_settings)
    }

    /// Shared constructor: the caller supplies the (already built)
    /// instruction set so `from_assembly` does not pay for it twice.
    fn with_parts(
        isa: InstructionSet,
        program: Program,
        config: &ArchitectureConfig,
        memory_settings: MemorySettings,
    ) -> Result<Self, String> {
        config.validate()?;
        program.validate_against(&isa)?;
        // Decode once, dispatch by DescriptorId from then on.
        let predecoded = Arc::new(PredecodedProgram::new(&program, &isa)?);

        let mut mem = MainMemory::new(config.memory.memory_capacity);
        program.load_data(|addr, bytes| {
            mem.write_bytes(addr, bytes)
                .unwrap_or_else(|e| panic!("program data does not fit in memory: {e}"));
        });
        if !memory_settings.arrays.is_empty() {
            memory_settings.allocate(&mut mem, config.memory.call_stack_size)?;
        }

        let program_end = program.len() as u64 * 4;
        let stack_top = config.memory.call_stack_size;
        let mut iss = Iss {
            pc: program.entry_point,
            program,
            predecoded,
            int_regs: [RegisterValue::zero(); 32],
            fp_regs: [RegisterValue { bits: 0, data_type: DataType::Float }; 32],
            mem,
            retired: 0,
            halted: None,
            main_returned: false,
            program_end,
            trace_enabled: false,
            trace: Vec::new(),
            fault: None,
        };
        // Same ABI initialisation as the pipeline: sp at the top of the call
        // stack, ra at the exit sentinel.
        iss.int_regs[2] = RegisterValue::from_typed(TypedValue::int(stack_top as i32));
        iss.int_regs[1] = RegisterValue::from_typed(TypedValue::int(program_end as i32));
        Ok(iss)
    }

    /// Assemble `source` with the same data layout as
    /// `Simulator::from_assembly` and build an interpreter for it.
    pub fn from_assembly(source: &str, config: &ArchitectureConfig) -> Result<Self, String> {
        config.validate()?;
        let data_base = config.memory.call_stack_size.div_ceil(16) * 16;
        let options = AssemblerOptions { data_base, ..Default::default() };
        let isa = InstructionSet::rv32imf();
        let program = assemble(source, &isa, &options)
            .map_err(|errs| errs.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n"))?;
        Self::with_parts(isa, program, config, MemorySettings::new())
    }

    // ----------------------------------------------------------------- access

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Why execution halted, if it has.
    pub fn halt_reason(&self) -> Option<&HaltReason> {
        self.halted.as_ref()
    }

    /// True once execution has ended.
    pub fn is_halted(&self) -> bool {
        self.halted.is_some()
    }

    /// Value of integer register `xi` as a signed 64-bit value.
    pub fn int_register(&self, index: u8) -> i64 {
        self.register(RegisterId::x(index)).as_i64()
    }

    /// Value of floating-point register `fi`.
    pub fn fp_register(&self, index: u8) -> f32 {
        self.register(RegisterId::f(index)).as_f32()
    }

    /// Value of an arbitrary register.
    pub fn register(&self, reg: RegisterId) -> RegisterValue {
        if reg.is_zero() {
            return RegisterValue::zero();
        }
        match reg.kind {
            rvsim_isa::RegisterFileKind::Int => self.int_regs[reg.index as usize],
            rvsim_isa::RegisterFileKind::Fp => self.fp_regs[reg.index as usize],
        }
    }

    /// The flat main memory.
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Enable or disable the retirement trace (clears recorded events).
    pub fn set_retirement_trace(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
        self.trace.clear();
    }

    /// Events recorded since the trace was enabled.
    pub fn retirement_trace(&self) -> &[RetireEvent] {
        &self.trace
    }

    /// Drain the recorded retirement trace, leaving tracing enabled.
    pub fn take_retirement_trace(&mut self) -> Vec<RetireEvent> {
        std::mem::take(&mut self.trace)
    }

    /// Install a deliberate bug (testing aid for the co-simulation harness).
    pub fn inject_fault(&mut self, fault: InjectedFault) {
        self.fault = Some((Sym::new(&fault.mnemonic), fault.xor_bits));
    }

    // -------------------------------------------------------------- execution

    /// Run until execution halts or `max_steps` instructions retired.
    pub fn run(&mut self, max_steps: u64) -> IssResult {
        let budget_end = self.retired + max_steps;
        // One refcount bump for the whole run, not one per instruction.
        let pp = Arc::clone(&self.predecoded);
        while self.halted.is_none() && self.retired < budget_end {
            self.step_with(&pp);
        }
        if self.halted.is_none() {
            self.halted = Some(HaltReason::MaxCyclesReached);
        }
        IssResult { halt: self.halted.clone().expect("halt set"), retired: self.retired }
    }

    /// Execute one instruction.
    pub fn step(&mut self) {
        let pp = Arc::clone(&self.predecoded);
        self.step_with(&pp);
    }

    fn step_with(&mut self, pp: &PredecodedProgram) {
        if self.halted.is_some() {
            return;
        }
        if self.pc >= self.program_end {
            self.halted = Some(if self.main_returned {
                HaltReason::MainReturned
            } else {
                HaltReason::PipelineEmpty
            });
            return;
        }
        let Some(entry) = pp.entry(self.pc) else {
            // A misaligned pc inside the code segment livelocks the pipeline
            // (it fetches nothing forever); report the same budget-style halt.
            self.halted = Some(HaltReason::MaxCyclesReached);
            return;
        };
        let sem = pp.semantics(entry.desc);

        // Bind source operands exactly like the pipeline's dispatch stage:
        // register reads by argument name, immediates as 32-bit ints, plus pc.
        let mut bindings = Bindings::new();
        for src in entry.srcs.iter() {
            bindings.bind(src.arg, self.register(src.reg).typed());
        }
        for imm in entry.imms.iter() {
            bindings.bind(imm.arg, TypedValue::int(imm.value as i32));
        }
        bindings.bind(SYM_PC, TypedValue::int(self.pc as i32));

        let pc = self.pc;
        let mut dest_effect: Option<(RegisterId, u64)> = None;
        let mut store_effect: Option<MemEffect> = None;
        let mut load_effect: Option<MemEffect> = None;
        let mut next_pc: Option<u64> = None;

        match entry.class {
            FunctionalClass::Fx | FunctionalClass::Fp => {
                if let Some(expr) = &sem.interpretable {
                    match expr.run(&bindings) {
                        Ok(output) => {
                            if let Some((_, value)) = output.assignments.first() {
                                dest_effect = self.write_dest(entry.mnemonic, &entry.dst, *value);
                            }
                        }
                        Err(exception) => {
                            self.halted = Some(HaltReason::Exception(exception));
                            return;
                        }
                    }
                }
            }
            FunctionalClass::Branch => {
                let taken = match &sem.condition {
                    Some(cond) => match cond.run(&bindings) {
                        Ok(out) => out.result.map(|v| v.is_true()).unwrap_or(false),
                        Err(e) => {
                            self.halted = Some(HaltReason::Exception(e));
                            return;
                        }
                    },
                    None => true,
                };
                let target = match &sem.target {
                    Some(t) => match t.run(&bindings) {
                        Ok(out) => out.result.map(|v| v.as_u32() as u64).unwrap_or(pc + 4),
                        Err(e) => {
                            self.halted = Some(HaltReason::Exception(e));
                            return;
                        }
                    },
                    None => pc + 4,
                };
                if let Some(expr) = &sem.interpretable {
                    if let Ok(out) = expr.run(&bindings) {
                        if let Some((_, value)) = out.assignments.first() {
                            dest_effect = self.write_dest(entry.mnemonic, &entry.dst, *value);
                        }
                    }
                }
                let next = if taken { target } else { pc + 4 };
                if next == self.program_end {
                    self.main_returned = true;
                }
                next_pc = Some(next);
            }
            FunctionalClass::Load => {
                let address = match Self::effective_address(&bindings, sem) {
                    Ok(a) => a,
                    Err(e) => {
                        self.halted = Some(HaltReason::Exception(e));
                        return;
                    }
                };
                let memory = entry.memory.expect("load has a memory descriptor");
                let raw = match self.mem.read(address, memory.size) {
                    Ok(raw) => raw,
                    Err(_) => {
                        self.halted =
                            Some(HaltReason::Exception(Exception::InvalidAddress { address }));
                        return;
                    }
                };
                let value = convert_loaded(raw, memory.size, memory.sign_extend, memory.data_type);
                dest_effect = self.write_dest(entry.mnemonic, &entry.dst, value);
                load_effect = Some(MemEffect { address, size: memory.size, value: value.bits() });
            }
            FunctionalClass::Store => {
                let address = match Self::effective_address(&bindings, sem) {
                    Ok(a) => a,
                    Err(e) => {
                        self.halted = Some(HaltReason::Exception(e));
                        return;
                    }
                };
                let memory = entry.memory.expect("store has a memory descriptor");
                let value = bindings.get(SYM_RS2).unwrap_or_default();
                // Same raw-image rule as the pipeline's store buffer: floats
                // keep their bit pattern, integers their 64-bit extension.
                let raw = match memory.data_type {
                    DataType::Float => value.bits() & 0xffff_ffff,
                    DataType::Double => value.bits(),
                    _ => value.as_u64(),
                };
                if self.mem.write(address, memory.size, raw).is_err() {
                    self.halted =
                        Some(HaltReason::Exception(Exception::InvalidAddress { address }));
                    return;
                }
                store_effect = Some(MemEffect { address, size: memory.size, value: raw });
            }
        }

        if self.trace_enabled {
            self.trace.push(RetireEvent {
                seq: self.retired,
                cycle: self.retired,
                pc,
                mnemonic: entry.mnemonic,
                dest: dest_effect,
                store: store_effect,
                load: load_effect,
                next_pc,
            });
        }
        self.retired += 1;
        self.pc = next_pc.unwrap_or(pc + 4);
    }

    fn effective_address(
        bindings: &Bindings,
        sem: &rvsim_core::predecode::DescSemantics,
    ) -> Result<u64, Exception> {
        let expr = sem.address.as_ref().expect("memory instruction has an address expression");
        let out = expr.run(bindings)?;
        Ok(out.result.map(|v| v.as_u32() as u64).unwrap_or(0))
    }

    /// Write the destination register, tagging the value with the argument's
    /// declared data type like the pipeline's `write_dest`.  Returns the
    /// architectural effect, or `None` when the write is discarded (`x0`).
    fn write_dest(
        &mut self,
        mnemonic: Sym,
        dst: &Option<rvsim_core::predecode::DstSpec>,
        value: TypedValue,
    ) -> Option<(RegisterId, u64)> {
        let dst = dst.as_ref()?;
        if dst.reg.is_zero() {
            return None;
        }
        let mut stored = RegisterValue { bits: value.bits(), data_type: dst.data_type };
        if let Some((fault_sym, xor_bits)) = self.fault {
            if fault_sym == mnemonic {
                stored.bits ^= xor_bits;
            }
        }
        match dst.reg.kind {
            rvsim_isa::RegisterFileKind::Int => self.int_regs[dst.reg.index as usize] = stored,
            rvsim_isa::RegisterFileKind::Fp => self.fp_regs[dst.reg.index as usize] = stored,
        }
        Some((dst.reg, stored.bits))
    }
}

/// Convert a raw little-endian loaded value according to the access shape.
/// Mirrors the pipeline's commit-path conversion bit for bit.
fn convert_loaded(raw: u64, size: usize, sign_extend: bool, data_type: DataType) -> TypedValue {
    match data_type {
        DataType::Float => TypedValue::from_bits(raw & 0xffff_ffff, DataType::Float),
        DataType::Double => TypedValue::from_bits(raw, DataType::Double),
        _ => {
            let value: i64 = match (size, sign_extend) {
                (1, true) => raw as u8 as i8 as i64,
                (1, false) => (raw & 0xff) as i64,
                (2, true) => raw as u16 as i16 as i64,
                (2, false) => (raw & 0xffff) as i64,
                (8, _) => raw as i64,
                (_, _) => raw as u32 as i32 as i64,
            };
            TypedValue::int(value as i32)
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn run_iss(asm: &str) -> Iss {
        let mut iss = Iss::from_assembly(asm, &ArchitectureConfig::default()).expect("assembles");
        let result = iss.run(100_000);
        assert_ne!(result.halt, HaltReason::MaxCyclesReached, "program hung");
        iss
    }

    #[test]
    fn arithmetic_and_halt_reason() {
        let iss = run_iss(
            "main:
                li   a0, 6
                li   a1, 7
                mul  a2, a0, a1
                addi a2, a2, -2
                ret
            ",
        );
        assert_eq!(iss.int_register(12), 40);
        assert_eq!(iss.halt_reason(), Some(&HaltReason::MainReturned));
    }

    #[test]
    fn loops_and_branches() {
        let iss = run_iss(
            "main:
                li   t0, 0
                li   t1, 25
            loop:
                addi t0, t0, 3
                addi t1, t1, -1
                bnez t1, loop
                mv   a0, t0
                ret
            ",
        );
        assert_eq!(iss.int_register(10), 75);
    }

    #[test]
    fn memory_round_trip_and_sign_extension() {
        let iss = run_iss(
            "data:
                .byte 0xff, 0x7f
                .hword 0x8000
            buf:
                .zero 8
            main:
                la   t0, data
                lb   a0, 0(t0)
                lbu  a1, 0(t0)
                lh   a2, 2(t0)
                la   t1, buf
                li   t2, -2
                sw   t2, 0(t1)
                lw   a3, 0(t1)
                ret
            ",
        );
        assert_eq!(iss.int_register(10), -1);
        assert_eq!(iss.int_register(11), 255);
        assert_eq!(iss.int_register(12), -32768);
        assert_eq!(iss.int_register(13), -2);
    }

    #[test]
    fn x0_writes_are_discarded() {
        let iss = run_iss(
            "main:
                li   x0, 55
                addi a0, x0, 3
                ret
            ",
        );
        assert_eq!(iss.int_register(0), 0);
        assert_eq!(iss.int_register(10), 3);
    }

    #[test]
    fn division_by_zero_halts_with_exception() {
        let mut iss = Iss::from_assembly(
            "main:
                li  a0, 10
                li  a1, 0
                div a2, a0, a1
                ret
            ",
            &ArchitectureConfig::default(),
        )
        .unwrap();
        let result = iss.run(1000);
        assert_eq!(result.halt, HaltReason::Exception(Exception::DivisionByZero));
        assert_eq!(result.retired, 2, "the faulting div does not retire");
    }

    #[test]
    fn invalid_address_halts_with_exception() {
        let mut iss = Iss::from_assembly(
            "main:
                li  t0, 0x40000
                lw  a0, 0(t0)
                ret
            ",
            &ArchitectureConfig::default(),
        )
        .unwrap();
        let result = iss.run(1000);
        assert!(matches!(result.halt, HaltReason::Exception(Exception::InvalidAddress { .. })));
    }

    #[test]
    fn function_calls_and_floats() {
        let iss = run_iss(
            "vals:
                .float 1.5, 2.25
            main:
                addi sp, sp, -16
                sw   ra, 12(sp)
                li   a0, 5
                call double
                la    t0, vals
                flw   fa0, 0(t0)
                flw   fa1, 4(t0)
                fadd.s fa2, fa0, fa1
                lw   ra, 12(sp)
                addi sp, sp, 16
                ret
            double:
                add  a0, a0, a0
                ret
            ",
        );
        assert_eq!(iss.int_register(10), 10);
        assert_eq!(iss.fp_register(12), 3.75);
    }

    #[test]
    fn trace_records_architectural_effects() {
        let mut iss = Iss::from_assembly(
            "buf:
                .zero 8
            main:
                li   t0, 7
                la   t1, buf
                sw   t0, 0(t1)
                lw   a0, 4(t1)
                ret
            ",
            &ArchitectureConfig::default(),
        )
        .unwrap();
        iss.set_retirement_trace(true);
        iss.run(1000);
        let trace = iss.retirement_trace();
        assert_eq!(trace[0].mnemonic, "addi"); // li expansion
        assert_eq!(trace[0].dest.unwrap().1, 7);
        let store = trace.iter().find(|e| e.store.is_some()).unwrap();
        assert_eq!(store.store.unwrap().size, 4);
        let load = trace.iter().find(|e| e.load.is_some()).unwrap();
        assert_eq!(load.load.unwrap().value, 0);
        let ret = trace.last().unwrap();
        assert_eq!(ret.mnemonic, "jalr");
        assert!(ret.next_pc.is_some());
        // seq numbers are dense program order.
        for (i, e) in trace.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn injected_fault_corrupts_matching_mnemonic_only() {
        let asm = "main:
                li   t0, 12
                li   t1, 10
                xor  a0, t0, t1
                add  a1, t0, t1
                ret
            ";
        let config = ArchitectureConfig::default();
        let mut good = Iss::from_assembly(asm, &config).unwrap();
        good.run(1000);
        let mut bad = Iss::from_assembly(asm, &config).unwrap();
        bad.inject_fault(InjectedFault { mnemonic: "xor".into(), xor_bits: 1 });
        bad.run(1000);
        assert_eq!(good.int_register(10) ^ 1, bad.int_register(10));
        assert_eq!(good.int_register(11), bad.int_register(11), "add is unaffected");
    }

    #[test]
    fn convert_loaded_shapes() {
        assert_eq!(convert_loaded(0xff, 1, true, DataType::Int).as_i64(), -1);
        assert_eq!(convert_loaded(0xff, 1, false, DataType::Int).as_i64(), 255);
        assert_eq!(convert_loaded(0x8000, 2, true, DataType::Int).as_i64(), -32768);
        assert_eq!(convert_loaded(0x8000, 2, false, DataType::Int).as_i64(), 0x8000);
        let f = convert_loaded(1.5f32.to_bits() as u64, 4, false, DataType::Float);
        assert_eq!(f.as_f32(), 1.5);
    }
}
