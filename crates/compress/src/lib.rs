//! # rvsim-compress — LZSS payload compression
//!
//! The paper's deployment compresses HTTP responses with gzip, which raised
//! local load-test throughput by ~40 % (§IV-A).  This crate provides the same
//! capability for the Rust reproduction: a small, dependency-free LZSS
//! compressor used by the simulation server to shrink JSON payloads
//! (processor-state snapshots compress extremely well because of their
//! repetitive structure).
//!
//! The format is deliberately simple and self-contained:
//!
//! * the stream is a sequence of blocks introduced by a flag byte;
//! * each of the 8 flag bits selects either a literal byte (bit = 0) or a
//!   back-reference (bit = 1) encoded as two bytes: a 12-bit distance and a
//!   4-bit length (length 3–18).
//!
//! Ratios are worse than zlib's, but the *trade-off direction* — CPU spent
//! compressing versus bytes on the wire — is preserved, which is what
//! experiment E2 (compression ablation) needs.

#![warn(missing_docs)]

use bytes::{BufMut, Bytes, BytesMut};

/// Minimum back-reference length (shorter matches are stored as literals).
const MIN_MATCH: usize = 3;
/// Maximum back-reference length (4-bit length field + MIN_MATCH).
const MAX_MATCH: usize = 18;
/// Sliding-window size (12-bit distance field).
const WINDOW: usize = 4096;

/// Compress `input` with LZSS.
///
/// The output starts with the uncompressed length as a little-endian `u32`
/// so [`decompress`] can pre-allocate, followed by the block stream.
pub fn compress(input: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
    out.put_u32_le(input.len() as u32);

    let mut pos = 0usize;
    // Hash chains would be faster, but a bounded brute-force search over the
    // window keeps the code small; server payloads are tens of kilobytes.
    // A simple 3-byte hash table keeps it O(n) in practice.
    let mut head: Vec<i64> = vec![-1; 1 << 16];
    let hash = |data: &[u8], i: usize| -> usize {
        let a = data[i] as usize;
        let b = data[i + 1] as usize;
        let c = data[i + 2] as usize;
        (a.wrapping_mul(2654435761) ^ b.wrapping_mul(40503) ^ c.wrapping_mul(2246822519)) & 0xffff
    };

    while pos < input.len() {
        let mut flags = 0u8;
        let mut flag_bit = 0;
        let mut chunk = BytesMut::with_capacity(32);

        while flag_bit < 8 && pos < input.len() {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if pos + MIN_MATCH <= input.len() {
                let h = hash(input, pos);
                let candidate = head[h];
                if candidate >= 0 {
                    let cand = candidate as usize;
                    let dist = pos - cand;
                    if dist > 0 && dist <= WINDOW {
                        let max_len = MAX_MATCH.min(input.len() - pos);
                        let mut len = 0;
                        while len < max_len && input[cand + len] == input[pos + len] {
                            len += 1;
                        }
                        if len >= MIN_MATCH {
                            best_len = len;
                            best_dist = dist;
                        }
                    }
                }
                head[h] = pos as i64;
            }

            if best_len >= MIN_MATCH {
                flags |= 1 << flag_bit;
                let token = (((best_dist - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16);
                chunk.put_u16_le(token);
                // Update the hash table for the skipped positions so later
                // matches can point into this region.
                let end = pos + best_len;
                let mut p = pos + 1;
                while p + MIN_MATCH <= input.len() && p < end {
                    head[hash(input, p)] = p as i64;
                    p += 1;
                }
                pos = end;
            } else {
                chunk.put_u8(input[pos]);
                pos += 1;
            }
            flag_bit += 1;
        }

        out.put_u8(flags);
        out.extend_from_slice(&chunk);
    }
    out.freeze()
}

/// Errors returned by [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The stream ended unexpectedly.
    Truncated,
    /// A back-reference points before the start of the output.
    BadReference,
    /// The decoded length does not match the header.
    LengthMismatch {
        /// Length promised by the header.
        expected: usize,
        /// Length actually decoded.
        actual: usize,
    },
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadReference => write!(f, "back-reference outside decoded data"),
            DecompressError::LengthMismatch { expected, actual } => {
                write!(f, "decoded {actual} bytes, header promised {expected}")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if input.len() < 4 {
        return Err(DecompressError::Truncated);
    }
    let expected = u32::from_le_bytes(input[0..4].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(expected);
    let mut pos = 4usize;

    while pos < input.len() && out.len() < expected {
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() >= expected {
                break;
            }
            if pos >= input.len() {
                return Err(DecompressError::Truncated);
            }
            if flags & (1 << bit) != 0 {
                if pos + 1 >= input.len() {
                    return Err(DecompressError::Truncated);
                }
                let token = u16::from_le_bytes([input[pos], input[pos + 1]]);
                pos += 2;
                let dist = ((token >> 4) as usize) + 1;
                let len = (token & 0xf) as usize + MIN_MATCH;
                if dist > out.len() {
                    return Err(DecompressError::BadReference);
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            } else {
                out.push(input[pos]);
                pos += 1;
            }
        }
    }

    if out.len() != expected {
        return Err(DecompressError::LengthMismatch { expected, actual: out.len() });
    }
    Ok(out)
}

/// Compression ratio achieved on `input` (compressed size / original size).
/// Values below 1.0 mean the payload shrank.
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn round_trip(data: &[u8]) {
        let compressed = compress(data);
        let back = decompress(&compressed).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_json_like_payload_shrinks_well() {
        let payload: String = (0..200)
            .map(|i| format!("{{\"id\":{i},\"mnemonic\":\"addi\",\"state\":\"Dispatched\"}},"))
            .collect();
        let data = payload.as_bytes();
        round_trip(data);
        let r = ratio(data);
        assert!(r < 0.4, "repetitive JSON should compress to <40 %, got {r}");
    }

    #[test]
    fn highly_repetitive_input() {
        let data = vec![b'x'; 10_000];
        round_trip(&data);
        // Match length is capped at 18 bytes, so the floor is ~2.1/18 ≈ 0.12.
        assert!(ratio(&data) < 0.2, "ratio {}", ratio(&data));
    }

    #[test]
    fn incompressible_random_data_round_trips() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..5000).map(|_| rng.random()).collect();
        round_trip(&data);
        // Random data may expand slightly, but never catastrophically.
        assert!(ratio(&data) < 1.2);
    }

    #[test]
    fn long_runs_exceeding_max_match() {
        let mut data = Vec::new();
        for i in 0..50u8 {
            data.extend(std::iter::repeat_n(i, 100));
        }
        round_trip(&data);
    }

    #[test]
    fn decompress_error_cases() {
        assert_eq!(decompress(&[]), Err(DecompressError::Truncated));
        assert_eq!(decompress(&[10, 0, 0]), Err(DecompressError::Truncated));
        // Header promises 4 bytes but stream ends immediately.
        assert_eq!(
            decompress(&[4, 0, 0, 0]),
            Err(DecompressError::LengthMismatch { expected: 4, actual: 0 })
        );
        // A back-reference with distance 16 before any output exists.
        let bad = [5u8, 0, 0, 0, 0b0000_0001, 0xf0, 0x00];
        assert_eq!(decompress(&bad), Err(DecompressError::BadReference));
        // Flag byte promising a reference but stream ends.
        let trunc = [5u8, 0, 0, 0, 0b0000_0001, 0x01];
        assert_eq!(decompress(&trunc), Err(DecompressError::Truncated));
    }

    #[test]
    fn ratio_of_empty_is_one() {
        assert_eq!(ratio(b""), 1.0);
    }

    proptest! {
        #[test]
        fn prop_round_trip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let compressed = compress(&data);
            let back = decompress(&compressed).unwrap();
            prop_assert_eq!(back, data);
        }

        #[test]
        fn prop_round_trip_structured_text(words in proptest::collection::vec("[a-z]{1,8}", 0..200)) {
            let text = words.join(" ");
            let compressed = compress(text.as_bytes());
            let back = decompress(&compressed).unwrap();
            prop_assert_eq!(back, text.as_bytes());
        }
    }
}
