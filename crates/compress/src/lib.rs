//! # rvsim-compress — LZSS payload compression
//!
//! The paper's deployment compresses HTTP responses with gzip, which raised
//! local load-test throughput by ~40 % (§IV-A).  This crate provides the same
//! capability for the Rust reproduction: a small, dependency-free LZSS
//! compressor used by the simulation server to shrink JSON payloads
//! (processor-state snapshots compress extremely well because of their
//! repetitive structure).
//!
//! The format is deliberately simple and self-contained:
//!
//! * the stream is a sequence of blocks introduced by a flag byte;
//! * each of the 8 flag bits selects either a literal byte (bit = 0) or a
//!   back-reference (bit = 1) encoded as two bytes: a 12-bit distance and a
//!   4-bit length (length 3–18).
//!
//! Ratios are worse than zlib's, but the *trade-off direction* — CPU spent
//! compressing versus bytes on the wire — is preserved, which is what
//! experiment E2 (compression ablation) needs.

#![warn(missing_docs)]

use bytes::Bytes;

/// Minimum back-reference length (shorter matches are stored as literals).
const MIN_MATCH: usize = 3;
/// Maximum back-reference length (4-bit length field + MIN_MATCH).
const MAX_MATCH: usize = 18;
/// Sliding-window size (12-bit distance field).
const WINDOW: usize = 4096;

/// Hash-table size (3-byte hash, 16 bits).
const HASH_SIZE: usize = 1 << 16;
/// How many chain candidates are examined per position.  Snapshot payloads
/// are highly repetitive, so a short walk already finds near-optimal matches.
const CHAIN_LIMIT: usize = 8;
/// Matches at least this long skip the lazy one-byte-later probe: the gain
/// from maybe finding a slightly longer match no longer pays for a second
/// chain walk (zlib's `good_length` heuristic).
const LAZY_THRESHOLD: usize = 10;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let a = data[i] as usize;
    let b = data[i + 1] as usize;
    let c = data[i + 2] as usize;
    (a.wrapping_mul(2654435761) ^ b.wrapping_mul(40503) ^ c.wrapping_mul(2246822519)) & 0xffff
}

/// Reusable LZSS compressor: hash chains with lazy matching, compressing
/// from/into caller-provided buffers.  The search tables persist across calls
/// (stale entries are invalidated by a monotonically increasing sequence
/// base, not by clearing half a megabyte of table per payload), so a
/// per-session compressor performs no allocation in steady state.
///
/// The emitted stream is the same on-wire format [`compress`] always
/// produced — [`decompress`] decodes it unchanged.
#[derive(Debug)]
pub struct Compressor {
    /// Latest sequence position per 3-byte hash; values below `base` are
    /// stale leftovers from earlier payloads.
    head: Vec<i64>,
    /// Previous sequence position with the same hash, indexed by
    /// `seq & (WINDOW - 1)`.
    prev: Vec<i64>,
    /// Sequence number of byte 0 of the current payload.
    base: i64,
    /// Per-flag-group scratch (up to 8 tokens).
    chunk: Vec<u8>,
}

impl Default for Compressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor {
    /// A fresh compressor (the only allocations this type ever makes).
    pub fn new() -> Self {
        Compressor {
            head: vec![-1; HASH_SIZE],
            prev: vec![-1; WINDOW],
            base: 0,
            chunk: Vec::with_capacity(24),
        }
    }

    /// Longest chain match for `pos`, as `(length, distance)`.
    #[inline]
    fn find_match(&self, input: &[u8], pos: usize) -> (usize, usize) {
        let max_len = MAX_MATCH.min(input.len() - pos);
        if max_len < MIN_MATCH {
            return (0, 0);
        }
        let pos_seq = self.base + pos as i64;
        let mut cand_seq = self.head[hash3(input, pos)];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        for _ in 0..CHAIN_LIMIT {
            // Stale (previous payload) and out-of-window candidates end the
            // walk; chains are strictly decreasing so this terminates.
            if cand_seq < self.base || pos_seq - cand_seq > WINDOW as i64 || cand_seq >= pos_seq {
                break;
            }
            let cand = (cand_seq - self.base) as usize;
            let mut len = 0;
            while len < max_len && input[cand + len] == input[pos + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = pos - cand;
                if len == max_len {
                    break;
                }
            }
            let next = self.prev[(cand_seq as usize) & (WINDOW - 1)];
            if next >= cand_seq {
                break;
            }
            cand_seq = next;
        }
        if best_len >= MIN_MATCH {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    }

    /// Insert `pos` into the hash chains.
    #[inline]
    fn insert(&mut self, input: &[u8], pos: usize) {
        if pos + MIN_MATCH > input.len() {
            return;
        }
        let seq = self.base + pos as i64;
        let h = hash3(input, pos);
        self.prev[(seq as usize) & (WINDOW - 1)] = self.head[h];
        self.head[h] = seq;
    }

    /// Compress `input`, appending the stream (length header + blocks) to
    /// `out`.  `out` is not cleared, so callers can prepend protocol bytes.
    pub fn compress_into(&mut self, input: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(&(input.len() as u32).to_le_bytes());

        let mut pos = 0usize;
        // Match found by a lazy probe for the position we are about to
        // process, carried forward so the chain walk is not repeated.
        let mut carried: Option<(usize, usize)> = None;
        while pos < input.len() {
            let mut flags = 0u8;
            let mut flag_bit = 0;
            self.chunk.clear();

            while flag_bit < 8 && pos < input.len() {
                let (mut best_len, best_dist) =
                    carried.take().unwrap_or_else(|| self.find_match(input, pos));
                if (MIN_MATCH..LAZY_THRESHOLD).contains(&best_len) && pos + 1 < input.len() {
                    // Lazy matching: when the next position starts a strictly
                    // longer match, emit a literal here and take that one
                    // (the probed match is carried to the next iteration).
                    let (next_len, next_dist) = self.find_match(input, pos + 1);
                    if next_len > best_len {
                        best_len = 0;
                        carried = Some((next_len, next_dist));
                    }
                }

                if best_len >= MIN_MATCH {
                    flags |= 1 << flag_bit;
                    let token = (((best_dist - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16);
                    self.chunk.extend_from_slice(&token.to_le_bytes());
                    for p in pos..pos + best_len {
                        self.insert(input, p);
                    }
                    pos += best_len;
                } else {
                    self.insert(input, pos);
                    self.chunk.push(input[pos]);
                    pos += 1;
                }
                flag_bit += 1;
            }

            out.push(flags);
            out.extend_from_slice(&self.chunk);
        }

        // Advance the sequence base past this payload plus a full window so
        // no stale chain entry can ever look in-window for the next payload.
        self.base += input.len() as i64 + WINDOW as i64;
    }
}

/// Compress `input` with LZSS.
///
/// The output starts with the uncompressed length as a little-endian `u32`
/// so [`decompress`] can pre-allocate, followed by the block stream.
/// One-shot convenience over [`Compressor::compress_into`]; server sessions
/// hold a reusable [`Compressor`] instead.
pub fn compress(input: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    Compressor::new().compress_into(input, &mut out);
    Bytes::from(out)
}

/// Errors returned by [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The stream ended unexpectedly.
    Truncated,
    /// A back-reference points before the start of the output.
    BadReference,
    /// The decoded length does not match the header.
    LengthMismatch {
        /// Length promised by the header.
        expected: usize,
        /// Length actually decoded.
        actual: usize,
    },
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadReference => write!(f, "back-reference outside decoded data"),
            DecompressError::LengthMismatch { expected, actual } => {
                write!(f, "decoded {actual} bytes, header promised {expected}")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if input.len() < 4 {
        return Err(DecompressError::Truncated);
    }
    let expected = u32::from_le_bytes(input[0..4].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(expected);
    let mut pos = 4usize;

    while pos < input.len() && out.len() < expected {
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() >= expected {
                break;
            }
            if pos >= input.len() {
                return Err(DecompressError::Truncated);
            }
            if flags & (1 << bit) != 0 {
                if pos + 1 >= input.len() {
                    return Err(DecompressError::Truncated);
                }
                let token = u16::from_le_bytes([input[pos], input[pos + 1]]);
                pos += 2;
                let dist = ((token >> 4) as usize) + 1;
                let len = (token & 0xf) as usize + MIN_MATCH;
                if dist > out.len() {
                    return Err(DecompressError::BadReference);
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            } else {
                out.push(input[pos]);
                pos += 1;
            }
        }
    }

    if out.len() != expected {
        return Err(DecompressError::LengthMismatch { expected, actual: out.len() });
    }
    Ok(out)
}

/// Compression ratio achieved on `input` (compressed size / original size).
/// Values below 1.0 mean the payload shrank.
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn round_trip(data: &[u8]) {
        let compressed = compress(data);
        let back = decompress(&compressed).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_json_like_payload_shrinks_well() {
        let payload: String = (0..200)
            .map(|i| format!("{{\"id\":{i},\"mnemonic\":\"addi\",\"state\":\"Dispatched\"}},"))
            .collect();
        let data = payload.as_bytes();
        round_trip(data);
        let r = ratio(data);
        assert!(r < 0.4, "repetitive JSON should compress to <40 %, got {r}");
    }

    #[test]
    fn highly_repetitive_input() {
        let data = vec![b'x'; 10_000];
        round_trip(&data);
        // Match length is capped at 18 bytes, so the floor is ~2.1/18 ≈ 0.12.
        assert!(ratio(&data) < 0.2, "ratio {}", ratio(&data));
    }

    #[test]
    fn incompressible_random_data_round_trips() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..5000).map(|_| rng.random()).collect();
        round_trip(&data);
        // Random data may expand slightly, but never catastrophically.
        assert!(ratio(&data) < 1.2);
    }

    #[test]
    fn long_runs_exceeding_max_match() {
        let mut data = Vec::new();
        for i in 0..50u8 {
            data.extend(std::iter::repeat_n(i, 100));
        }
        round_trip(&data);
    }

    #[test]
    fn decompress_error_cases() {
        assert_eq!(decompress(&[]), Err(DecompressError::Truncated));
        assert_eq!(decompress(&[10, 0, 0]), Err(DecompressError::Truncated));
        // Header promises 4 bytes but stream ends immediately.
        assert_eq!(
            decompress(&[4, 0, 0, 0]),
            Err(DecompressError::LengthMismatch { expected: 4, actual: 0 })
        );
        // A back-reference with distance 16 before any output exists.
        let bad = [5u8, 0, 0, 0, 0b0000_0001, 0xf0, 0x00];
        assert_eq!(decompress(&bad), Err(DecompressError::BadReference));
        // Flag byte promising a reference but stream ends.
        let trunc = [5u8, 0, 0, 0, 0b0000_0001, 0x01];
        assert_eq!(decompress(&trunc), Err(DecompressError::Truncated));
    }

    #[test]
    fn ratio_of_empty_is_one() {
        assert_eq!(ratio(b""), 1.0);
    }

    #[test]
    fn reused_compressor_round_trips_successive_payloads() {
        // A per-session compressor sees many different payloads; stale hash
        // chains from earlier payloads must never corrupt later streams.
        let mut compressor = Compressor::new();
        let payloads: Vec<Vec<u8>> = vec![
            b"abcabcabcabcabc".to_vec(),
            vec![b'x'; 5000],
            (0..2000u32).flat_map(|i| i.to_le_bytes()).collect(),
            b"".to_vec(),
            b"abcabcabcabcabc".to_vec(),
            {
                let mut rng = StdRng::seed_from_u64(11);
                (0..3000).map(|_| rng.random()).collect()
            },
        ];
        let mut out = Vec::new();
        for payload in &payloads {
            out.clear();
            compressor.compress_into(payload, &mut out);
            assert_eq!(decompress(&out).unwrap(), *payload);
        }
    }

    #[test]
    fn compress_into_appends_after_existing_bytes() {
        let mut out = vec![9u8];
        Compressor::new().compress_into(b"hello hello hello", &mut out);
        assert_eq!(out[0], 9);
        assert_eq!(decompress(&out[1..]).unwrap(), b"hello hello hello");
    }

    #[test]
    fn hash_chains_find_matches_beyond_the_newest_candidate() {
        // Byte patterns where the newest hash-table candidate is a short
        // match but an older chain entry yields a longer one: a single-head
        // table stops at the first candidate, chains keep walking.
        let mut data = Vec::new();
        data.extend_from_slice(b"AAAABBBBCCCCDDDD-long-prefix-0123456789");
        data.extend_from_slice(b"AAAAZZZZ"); // newest "AAAA" occurrence, diverges after 4
        data.extend_from_slice(b"AAAABBBBCCCCDDDD-long-prefix-0123456789"); // full repeat
        let compressed = compress(&data);
        assert_eq!(decompress(&compressed).unwrap(), data);
        // The 39-byte repeat must compress into a handful of tokens: well
        // under half the repeat's size on the wire.
        assert!(
            compressed.len() < data.len() - 20,
            "chains should exploit the long repeat ({} vs {})",
            compressed.len(),
            data.len()
        );
    }

    proptest! {
        #[test]
        fn prop_round_trip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let compressed = compress(&data);
            let back = decompress(&compressed).unwrap();
            prop_assert_eq!(back, data);
        }

        #[test]
        fn prop_round_trip_structured_text(words in proptest::collection::vec("[a-z]{1,8}", 0..200)) {
            let text = words.join(" ");
            let compressed = compress(text.as_bytes());
            let back = decompress(&compressed).unwrap();
            prop_assert_eq!(back, text.as_bytes());
        }
    }
}
