//! Quicksort on the simulated processor — one of the complex test programs the
//! paper uses to validate the simulator (§IV: "array sorting using the
//! quicksort algorithm").  The example fills an array through the Memory
//! Settings mechanism, sorts it with a recursive quicksort written in C,
//! verifies the result and prints the pipeline statistics.
//!
//! ```bash
//! cargo run --release --example quicksort_pipeline
//! ```

use riscv_superscalar_sim::prelude::*;

const QUICKSORT_C: &str = r#"
extern int data[];

void swap(int a[], int i, int j) {
    int t = a[i];
    a[i] = a[j];
    a[j] = t;
}

int partition(int a[], int lo, int hi) {
    int pivot = a[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j++) {
        if (a[j] <= pivot) {
            i++;
            swap(a, i, j);
        }
    }
    swap(a, i + 1, hi);
    return i + 1;
}

void quicksort(int a[], int lo, int hi) {
    if (lo < hi) {
        int p = partition(a, lo, hi);
        quicksort(a, lo, p - 1);
        quicksort(a, p + 1, hi);
    }
}

int main(void) {
    quicksort(data, 0, 31);
    /* return a checksum so the host can verify quickly */
    int sum = 0;
    for (int i = 0; i < 32; i++) {
        sum += data[i] * (i + 1);
    }
    return sum;
}
"#;

fn main() {
    // Unsorted input, defined exactly as the Memory Settings window would.
    let values: Vec<f64> = vec![
        93.0, 7.0, 55.0, 12.0, 88.0, 3.0, 41.0, 67.0, 25.0, 99.0, 4.0, 73.0, 18.0, 62.0, 31.0,
        80.0, 9.0, 46.0, 58.0, 2.0, 77.0, 36.0, 14.0, 91.0, 28.0, 65.0, 50.0, 6.0, 84.0, 21.0,
        70.0, 39.0,
    ];
    let mut memory = MemorySettings::new();
    memory.add(MemoryArray {
        name: "data".to_string(),
        element: ScalarType::Word,
        alignment: 16,
        fill: ArrayFill::Values(values.clone()),
    });

    let output = compile(QUICKSORT_C, OptLevel::O2).expect("quicksort compiles");
    let config = ArchitectureConfig::default();
    let mut sim = Simulator::from_assembly_with_memory(&output.assembly, &config, memory)
        .expect("quicksort assembles");
    let result = sim.run(10_000_000).expect("quicksort runs");

    // Verify against a host-side sort.
    let mut expected: Vec<i64> = values.iter().map(|v| *v as i64).collect();
    expected.sort_unstable();
    let expected_checksum: i64 = expected.iter().enumerate().map(|(i, v)| v * (i as i64 + 1)).sum();
    let checksum = sim.int_register(10);
    println!("halt:               {:?}", result.halt);
    println!("checksum:           {checksum} (expected {expected_checksum})");
    assert_eq!(checksum, expected_checksum, "the simulated quicksort must actually sort");

    // Read the sorted array straight out of simulated memory.
    let base = sim.program().symbol("data").expect("data symbol") as u64;
    let sorted: Vec<i64> = (0..32)
        .map(|i| sim.memory().memory().read_u32(base + i * 4).unwrap() as i32 as i64)
        .collect();
    assert_eq!(sorted, expected);
    println!("sorted array:       {:?}", &sorted[..8]);

    let stats = sim.statistics();
    println!("\ncycles:             {}", stats.cycles);
    println!("committed:          {}", stats.committed);
    println!("IPC:                {:.3}", stats.ipc());
    println!(
        "branch accuracy:    {:.1}% (quicksort's data-dependent branches are hard)",
        stats.branch_accuracy() * 100.0
    );
    println!("ROB flushes:        {}", stats.rob_flushes);
    println!("cache hit rate:     {:.1}%", stats.cache_hit_rate() * 100.0);
    println!("loads / stores:     {} / {}", stats.loads, stats.stores);
}
