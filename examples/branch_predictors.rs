//! Branch-predictor study: run branch-heavy kernels against every predictor
//! configuration the Architecture Settings window offers (zero/one/two-bit,
//! local vs. global history, different default states) and compare accuracy,
//! pipeline flushes and cycles.
//!
//! ```bash
//! cargo run --release --example branch_predictors
//! ```

use riscv_superscalar_sim::prelude::*;

/// A predictable loop: one backward branch taken 511 times then not taken.
const LOOP_KERNEL: &str = "
main:
    li   t0, 512
    li   a0, 0
loop:
    addi a0, a0, 1
    addi t0, t0, -1
    bnez t0, loop
    ret
";

/// An alternating branch: taken / not-taken / taken / … — a one-bit predictor
/// mispredicts every time, a two-bit predictor with history learns it.
const ALTERNATING_KERNEL: &str = "
main:
    li   t0, 0
    li   t1, 256
    li   a0, 0
loop:
    andi t2, t0, 1
    beqz t2, even
    addi a0, a0, 2
    j    next
even:
    addi a0, a0, 1
next:
    addi t0, t0, 1
    blt  t0, t1, loop
    ret
";

fn run(kernel: &str, predictor: BranchPredictorConfig) -> (f64, u64, u64) {
    let config = ArchitectureConfig { predictor, ..Default::default() };
    let mut sim = Simulator::from_assembly(kernel, &config).expect("assembles");
    sim.run(1_000_000).expect("runs");
    let stats = sim.statistics();
    (stats.branch_accuracy(), stats.rob_flushes, stats.cycles)
}

fn main() {
    let configs: Vec<(&str, BranchPredictorConfig)> = vec![
        (
            "zero-bit (static NT)",
            BranchPredictorConfig {
                predictor_kind: PredictorKind::Zero,
                default_state: CounterState::StronglyNotTaken,
                ..Default::default()
            },
        ),
        (
            "zero-bit (static T)",
            BranchPredictorConfig {
                predictor_kind: PredictorKind::Zero,
                default_state: CounterState::StronglyTaken,
                ..Default::default()
            },
        ),
        (
            "one-bit",
            BranchPredictorConfig { predictor_kind: PredictorKind::One, ..Default::default() },
        ),
        (
            "two-bit, no history",
            BranchPredictorConfig {
                predictor_kind: PredictorKind::Two,
                history_bits: 0,
                ..Default::default()
            },
        ),
        (
            "two-bit, global hist",
            BranchPredictorConfig {
                predictor_kind: PredictorKind::Two,
                history: HistoryKind::Global,
                history_bits: 4,
                ..Default::default()
            },
        ),
        (
            "two-bit, local hist",
            BranchPredictorConfig {
                predictor_kind: PredictorKind::Two,
                history: HistoryKind::Local,
                history_bits: 4,
                ..Default::default()
            },
        ),
    ];

    for (kernel_name, kernel) in
        [("loop kernel", LOOP_KERNEL), ("alternating kernel", ALTERNATING_KERNEL)]
    {
        println!("\n=== {kernel_name} ===");
        println!("{:<24} {:>10} {:>10} {:>10}", "predictor", "accuracy", "flushes", "cycles");
        println!("{}", "-".repeat(58));
        for (name, predictor) in &configs {
            let (accuracy, flushes, cycles) = run(kernel, predictor.clone());
            println!("{name:<24} {:>9.1}% {flushes:>10} {cycles:>10}", accuracy * 100.0);
        }
    }

    println!("\nThe loop kernel favours anything that predicts 'taken'; the alternating");
    println!("kernel defeats the one-bit predictor completely (it flips every time)");
    println!("while history-based two-bit predictors learn the pattern.");
}
