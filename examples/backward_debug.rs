//! Backward debugging session: step a program forward until something
//! interesting happens (here: the first pipeline flush), then walk backwards
//! cycle by cycle to inspect how the processor state evolved — the paper's
//! forward-and-backward simulation workflow (§II, §III-B).
//!
//! ```bash
//! cargo run --release --example backward_debug
//! ```

use riscv_superscalar_sim::prelude::*;

const PROGRAM: &str = "
main:
    li   t0, 0
    li   t1, 12
    li   a0, 0
loop:
    andi t2, t0, 1
    beqz t2, even
    addi a0, a0, 10
    j    next
even:
    addi a0, a0, 1
next:
    addi t0, t0, 1
    blt  t0, t1, loop
    ret
";

fn main() {
    let mut config = ArchitectureConfig::default();
    config.predictor.history_bits = 0; // make the alternating branch mispredict
    let mut sim = Simulator::from_assembly(PROGRAM, &config).expect("assembles");

    // Forward until the first misprediction flush.
    let mut flush_cycle = None;
    for _ in 0..500 {
        sim.step();
        if sim.statistics().rob_flushes > 0 {
            flush_cycle = Some(sim.cycle());
            break;
        }
    }
    let flush_cycle = flush_cycle.expect("the alternating branch must mispredict");
    println!("first pipeline flush observed at cycle {flush_cycle}");
    println!("log entries so far:");
    for entry in sim.log().entries() {
        println!("  [{:>4}] {}", entry.cycle, entry.message);
    }

    // Walk backwards over the five cycles leading up to the flush and show
    // how much architectural progress had been made at each point.
    println!("\nwalking backwards from cycle {flush_cycle}:");
    for _ in 0..5 {
        sim.step_back();
        let stats = sim.statistics();
        println!(
            "  cycle {:>4}: pc=0x{:04x}, committed {:>3}, in flight {:>2}, flushes {}",
            sim.cycle(),
            sim.pc(),
            stats.committed,
            sim.in_flight().count(),
            stats.rob_flushes
        );
    }

    // Stepping forward again reproduces the exact same flush cycle —
    // backward simulation relies on the simulator being deterministic.
    while sim.statistics().rob_flushes == 0 {
        sim.step();
    }
    assert_eq!(sim.cycle(), flush_cycle, "deterministic replay must reproduce the flush");
    println!("\nreplayed forward: the flush happens at cycle {} again", sim.cycle());

    let result = sim.run(100_000).expect("runs to completion");
    println!("final state: halt={:?}, a0={}", result.halt, sim.int_register(10));
    assert_eq!(sim.int_register(10), 66); // 6 odd iterations * 10 + 6 even * 1
}
