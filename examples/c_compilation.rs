//! C compilation workflow: compile the same C kernel at `-O0` … `-O3`, run
//! every version on the same processor, and compare static code size and
//! dynamic behaviour — the paper's "how different implementations of the same
//! algorithm impact runtime metrics" exercise (§I-B, §II-B).
//!
//! ```bash
//! cargo run --release --example c_compilation
//! ```

use riscv_superscalar_sim::prelude::*;

const C_SOURCE: &str = r#"
int weights[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};

int dot(int n) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum += weights[i] * (i + 1) * 2;
    }
    return sum;
}

int main(void) {
    int total = 0;
    for (int round = 0; round < 8; round++) {
        total += dot(16);
    }
    return total / 8;
}
"#;

fn main() {
    let config = ArchitectureConfig::default();
    println!("C source: weighted dot product, 8 rounds of 16 elements\n");
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>8} {:>12}",
        "level", "asm lines", "committed", "cycles", "IPC", "a0 (result)"
    );
    println!("{}", "-".repeat(66));

    let mut results = Vec::new();
    for (label, opt) in
        [("-O0", OptLevel::O0), ("-O1", OptLevel::O1), ("-O2", OptLevel::O2), ("-O3", OptLevel::O3)]
    {
        let output = compile(C_SOURCE, opt).expect("C program compiles");
        let asm_lines = output.assembly.lines().filter(|l| !l.trim().is_empty()).count();
        let mut sim = Simulator::from_assembly(&output.assembly, &config).expect("assembles");
        sim.run(5_000_000).expect("runs");
        let stats = sim.statistics();
        println!(
            "{label:<6} {asm_lines:>12} {:>12} {:>10} {:>8.3} {:>12}",
            stats.committed,
            stats.cycles,
            stats.ipc(),
            sim.int_register(10)
        );
        results.push((label, sim.int_register(10), stats.cycles));
    }

    // All levels must agree on the answer.
    let expected = results[0].1;
    assert!(results.iter().all(|(_, v, _)| *v == expected), "optimization must not change results");
    let o0 = results[0].2 as f64;
    let o3 = results[3].2 as f64;
    println!("\n-O3 runs the same computation in {:.1}% of the -O0 cycles.", o3 / o0 * 100.0);

    // Show the editor's C <-> assembly line linking for a few lines.
    let output = compile(C_SOURCE, OptLevel::O2).unwrap();
    println!("\nC line -> first assembly line (editor highlighting data, first 8 entries):");
    for (c_line, asm_line) in output.line_map.iter().take(8) {
        println!("  C line {c_line:>3} -> asm line {asm_line}");
    }
}
