//! Cache behaviour: how access pattern and cache geometry change performance.
//!
//! Two versions of the same reduction — a sequential sweep and a strided
//! sweep over a 4 KiB array — are run against several L1 configurations.
//! This is the classic HPC optimization lesson the paper's simulator is meant
//! to teach: the code computes the same value, but the memory system makes
//! one of them much slower.
//!
//! ```bash
//! cargo run --release --example cache_blocking
//! ```

use riscv_superscalar_sim::prelude::*;

/// Sequential sweep: sum 1024 words in address order.
const SEQUENTIAL: &str = "
data:
    .zero 4096
main:
    la   t0, data
    li   t1, 1024
    li   a0, 0
loop:
    lw   t2, 0(t0)
    add  a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    ret
";

/// Strided sweep: same 1024 words, but visited with a 256-byte stride so that
/// consecutive accesses map to different cache lines (and, for small caches,
/// keep evicting each other).
const STRIDED: &str = "
data:
    .zero 4096
main:
    la   t5, data
    li   t6, 64            # 64 outer iterations (one per offset in a line group)
    li   a0, 0
outer:
    mv   t0, t5
    li   t1, 16            # 16 strided loads per outer iteration
inner:
    lw   t2, 0(t0)
    add  a0, a0, t2
    addi t0, t0, 256       # stride of 256 bytes
    addi t1, t1, -1
    bnez t1, inner
    addi t5, t5, 4
    addi t6, t6, -1
    bnez t6, outer
    ret
";

fn run(program: &str, cache: CacheConfig) -> (u64, f64) {
    let mut config = ArchitectureConfig { cache, ..Default::default() };
    config.memory.timings.load_latency = 20;
    config.memory.timings.store_latency = 20;
    let mut sim = Simulator::from_assembly(program, &config).expect("assembles");
    sim.run(5_000_000).expect("runs");
    let stats = sim.statistics();
    (stats.cycles, stats.cache_hit_rate())
}

fn main() {
    let configs = [
        ("no cache", CacheConfig { enabled: false, ..CacheConfig::default() }),
        (
            "small: 8 x 32 B direct",
            CacheConfig {
                line_count: 8,
                line_size: 32,
                associativity: 1,
                ..CacheConfig::default()
            },
        ),
        (
            "medium: 16 x 32 B 2-way",
            CacheConfig {
                line_count: 16,
                line_size: 32,
                associativity: 2,
                ..CacheConfig::default()
            },
        ),
        (
            "large: 64 x 64 B 4-way",
            CacheConfig {
                line_count: 64,
                line_size: 64,
                associativity: 4,
                ..CacheConfig::default()
            },
        ),
    ];

    println!(
        "{:<26} {:>14} {:>10} {:>14} {:>10}",
        "cache", "seq cycles", "seq hit%", "strided cycles", "str hit%"
    );
    println!("{}", "-".repeat(78));
    for (name, cache) in configs {
        let (seq_cycles, seq_hit) = run(SEQUENTIAL, cache.clone());
        let (str_cycles, str_hit) = run(STRIDED, cache.clone());
        println!(
            "{name:<26} {seq_cycles:>14} {:>9.1}% {str_cycles:>14} {:>9.1}%",
            seq_hit * 100.0,
            str_hit * 100.0
        );
    }

    println!("\nThe sequential sweep enjoys spatial locality (one miss per line),");
    println!("while the strided sweep defeats small caches entirely; growing the");
    println!("cache or its associativity closes the gap — exactly the behaviour");
    println!("the simulator's cache statistics are meant to expose.");
}
