//! Table I in miniature: run the paper's load-test scenario (N users, 40
//! interactive steps each, ramp-up, think time) against the in-process
//! simulation server in its "direct" and "containerized" deployment modes,
//! with and without response compression.
//!
//! The think/ramp times are scaled down so the example finishes in seconds;
//! pass `--paper-timing` to use the original 4 s ramp-up and 1 s think time
//! (the run then takes several minutes, like the original JMeter test).
//!
//! ```bash
//! cargo run --release --example load_test
//! ```

use riscv_superscalar_sim::prelude::*;
use rvsim_loadgen::run_load_test as load_test;
use rvsim_loadgen::Scenario;

fn server(mode: DeploymentMode, compress: bool) -> ThreadedServer {
    ThreadedServer::start(SimulationServer::new(DeploymentConfig {
        mode,
        compress_responses: compress,
        worker_threads: 4,
        idle_session_ttl_seconds: None,
    }))
}

fn main() {
    let paper_timing = std::env::args().any(|a| a == "--paper-timing");
    let scale = if paper_timing { 1.0 } else { 0.002 };
    let user_counts = if paper_timing { vec![30, 100] } else { vec![8, 30] };

    println!("deployment   users   median-ms   p90-ms   throughput(trans/s)");
    println!("{}", "-".repeat(66));

    for &users in &user_counts {
        for (label, mode) in [
            ("Direct", DeploymentMode::Direct),
            ("Docker*", DeploymentMode::Containerized { request_overhead_us: 150 }),
        ] {
            let srv = server(mode, true);
            let mut scenario = Scenario::paper_scaled(users, scale);
            if !paper_timing {
                scenario.steps_per_user = 10;
            }
            let report = load_test(&srv, &scenario);
            println!(
                "{label:<12} {users:>5} {:>11.2} {:>8.2} {:>15.2}",
                report.median_latency_ms, report.p90_latency_ms, report.throughput_tps
            );
            srv.shutdown();
        }
    }

    // Compression ablation (the paper reports gzip raising throughput ~40 %).
    println!("\ncompression ablation (direct mode, {} users):", user_counts[1]);
    for (label, compress) in [("uncompressed", false), ("compressed", true)] {
        let srv = server(DeploymentMode::Direct, compress);
        let mut scenario = Scenario::paper_scaled(user_counts[1], scale);
        if !paper_timing {
            scenario.steps_per_user = 10;
        }
        let report = load_test(&srv, &scenario);
        println!("  {}", report.table_row(label));
        srv.shutdown();
    }

    println!("\n(*) \"Docker\" adds a fixed per-request CPU overhead standing in for the");
    println!("container's proxying cost; see DESIGN.md, substitution #3.");
}
