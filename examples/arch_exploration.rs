//! Architecture exploration: the HW/SW co-design workflow the paper's tool is
//! built for (§I-B).  The same kernel is run on a sweep of processor
//! configurations — scalar to 4-wide, different ROB sizes and predictors —
//! and the resulting IPC / cycle counts are printed as a table.
//!
//! ```bash
//! cargo run --release --example arch_exploration
//! ```

use riscv_superscalar_sim::prelude::*;

/// An ILP-rich kernel: independent accumulator chains over a loop.
const KERNEL: &str = "
main:
    li   t0, 0
    li   t1, 0
    li   t2, 0
    li   t3, 0
    li   t4, 256
loop:
    addi t0, t0, 1
    addi t1, t1, 2
    addi t2, t2, 3
    addi t3, t3, 4
    addi t4, t4, -1
    bnez t4, loop
    add  a0, t0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    ret
";

fn run(config: &ArchitectureConfig) -> (u64, f64, f64) {
    let mut sim = Simulator::from_assembly(KERNEL, config).expect("kernel assembles");
    sim.run(1_000_000).expect("kernel runs");
    assert_eq!(
        sim.int_register(10),
        256 + 512 + 768 + 1024,
        "kernel result must not depend on the architecture"
    );
    let stats = sim.statistics();
    (stats.cycles, stats.ipc(), stats.branch_accuracy())
}

fn main() {
    println!("{:<22} {:>10} {:>8} {:>12}", "configuration", "cycles", "IPC", "branch acc.");
    println!("{}", "-".repeat(56));

    // Width sweep.
    for (name, config) in [
        ("scalar (1-wide)", ArchitectureConfig::scalar()),
        ("default (2-wide)", ArchitectureConfig::default()),
        ("wide (4-wide)", ArchitectureConfig::wide()),
    ] {
        let (cycles, ipc, acc) = run(&config);
        println!("{name:<22} {cycles:>10} {ipc:>8.3} {:>11.1}%", acc * 100.0);
    }

    // Reorder-buffer sweep on the wide machine.
    for rob in [8, 16, 32, 64] {
        let mut config = ArchitectureConfig::wide();
        config.buffers.rob_size = rob;
        config.memory.rename_file_size = rob.max(64);
        let (cycles, ipc, _) = run(&config);
        println!("{:<22} {cycles:>10} {ipc:>8.3}", format!("wide, ROB={rob}"));
    }

    // Predictor sweep on the default machine.
    for (name, kind) in [
        ("zero-bit", PredictorKind::Zero),
        ("one-bit", PredictorKind::One),
        ("two-bit", PredictorKind::Two),
    ] {
        let mut config = ArchitectureConfig::default();
        config.predictor.predictor_kind = kind;
        let (cycles, ipc, acc) = run(&config);
        println!(
            "{:<22} {cycles:>10} {ipc:>8.3} {:>11.1}%",
            format!("default, {name}"),
            acc * 100.0
        );
    }

    println!("\nWider machines retire the independent chains in parallel until the");
    println!("branch at the end of every iteration becomes the bottleneck; better");
    println!("predictors recover most of that loss.");
}
