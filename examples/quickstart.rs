//! Quickstart: assemble a small program, run it cycle by cycle, and print the
//! statistics the simulator's GUI would show.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use riscv_superscalar_sim::prelude::*;

fn main() {
    // A small kernel: sum the integers 1..=10.
    let program = "
main:
    li   a0, 0          # accumulator
    li   t0, 10         # loop counter
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    ret
";

    // The default architecture is a 2-wide out-of-order core with a 32-entry
    // reorder buffer, a 2-way 16-line L1 cache and a 2-bit gshare predictor.
    let config = ArchitectureConfig::default();
    println!("architecture: {}", config.name);
    println!(
        "fetch width {}, ROB {}, {} FX units, cache {} B",
        config.buffers.fetch_width,
        config.buffers.rob_size,
        config.units.fx_units.len(),
        config.cache.capacity_bytes()
    );

    let mut sim = Simulator::from_assembly(program, &config).expect("program assembles");

    // Step the first ten cycles by hand, watching instructions move through
    // the pipeline (this is what the web GUI animates).
    for _ in 0..10 {
        sim.step();
        let in_flight = sim.in_flight().count();
        println!(
            "cycle {:>3}: pc=0x{:04x}, {} instructions in flight",
            sim.cycle(),
            sim.pc(),
            in_flight
        );
    }

    // Run to completion and print the runtime statistics report.
    let result = sim.run(100_000).expect("simulation runs");
    println!("\nhalt: {:?}", result.halt);
    println!("a0 = {}", sim.int_register(10));
    println!();
    println!("{}", sim.statistics().report());

    // The same state can be captured as the JSON snapshot the web client renders.
    let snapshot = ProcessorSnapshot::capture(&sim);
    println!("snapshot JSON size: {} bytes", snapshot.to_json().len());
}
