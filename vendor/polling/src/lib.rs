//! Vendored minimal `polling` stand-in: a thin, mio-style readiness wrapper
//! over the kernel's I/O multiplexer, plus a cross-thread [`Waker`].
//!
//! The build environment is offline, so instead of the real `polling`/`mio`
//! crates this declares the handful of libc symbols it needs directly
//! (every Rust unix target links libc already) and wraps them in a safe,
//! level-triggered API:
//!
//! * Linux: `epoll` — O(ready) wakeups, the backend the front end's
//!   10k-connection target runs on;
//! * other unix: `poll(2)` — O(registered) scans, functionally identical
//!   (the workspace never registers more than a few thousand fds there).
//!
//! The API is deliberately small: register/modify/deregister an fd with an
//! opaque `usize` token and an [`Interest`] (readable and/or writable), wait
//! for a batch of [`Event`]s with an optional timeout, and wake the waiting
//! thread from anywhere via [`Waker`] (eventfd on Linux, a self-pipe
//! elsewhere).  All registrations are level-triggered: an fd stays ready
//! until the condition is drained, so a handler that processes only part of
//! the readable data is re-notified on the next wait.

#![warn(missing_docs)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readiness interest of a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Notify when the fd is readable (or the peer closed).
    pub readable: bool,
    /// Notify when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Readable and writable.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Neither direction: stay registered, deliver only error/hangup events.
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// The fd has readable data (or EOF) pending.
    pub readable: bool,
    /// The fd accepts writes without blocking.
    pub writable: bool,
    /// Error or hangup: the connection is unusable and should be closed.
    pub error: bool,
}

/// Reusable event batch filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    events: Vec<Event>,
}

impl Events {
    /// Batch with the default capacity.
    pub fn new() -> Self {
        Events::with_capacity(256)
    }

    /// Batch sized for `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Self {
        Events { events: Vec::with_capacity(capacity.max(1)) }
    }

    /// Events delivered by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the last wait delivered no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Milliseconds for the kernel timeout argument: `None` blocks forever,
/// sub-millisecond timeouts round up so a short deadline never spins.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            t.as_millis().min(i32::MAX as u128) as i32
                + i32::from(t.subsec_nanos() % 1_000_000 != 0)
        }
    }
}

fn last_errno() -> io::Error {
    io::Error::last_os_error()
}

/// Soft limit on open file descriptors for this process, when the platform
/// exposes one.  Benchmarks use it to size connection sweeps so a
/// high-connection run degrades into a clamped run instead of `EMFILE`.
pub fn open_file_limit() -> Option<u64> {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    }
    // RLIMIT_NOFILE is 7 on Linux and 8 on the BSDs/macOS.
    let resource = if cfg!(target_os = "linux") { 7 } else { 8 };
    let mut limit = RLimit { cur: 0, max: 0 };
    // SAFETY: getrlimit writes the two-field struct and nothing else.
    let rc = unsafe { getrlimit(resource, &mut limit) };
    (rc == 0).then_some(limit.cur)
}

// ---------------------------------------------------------------------------
// Linux backend: epoll + eventfd.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn mask(interest: Interest) -> u32 {
        // RDHUP rides along with readable interest only: a connection whose
        // owner is not currently reading (e.g. a response is being computed)
        // must not busy-wake a level-triggered wait just because the peer
        // half-closed.
        let mut events = 0;
        if interest.readable {
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// Readiness poller over one epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Create an epoll instance.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_errno());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: usize) -> io::Result<()> {
            let mut event = EpollEvent { events, data: token as u64 };
            // SAFETY: `event` outlives the call; epoll_ctl copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(last_errno());
            }
            Ok(())
        }

        /// Register `fd` with `token` for `interest` (level-triggered).
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, mask(interest), token)
        }

        /// Change the interest of a registered fd.
        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, mask(interest), token)
        }

        /// Remove a registered fd.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait for readiness events, blocking at most `timeout`.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.events.clear();
            let capacity = events.events.capacity().min(4096) as i32;
            let mut raw = [EpollEvent { events: 0, data: 0 }; 1024];
            let max = capacity.min(raw.len() as i32);
            // SAFETY: the kernel writes at most `max` entries into `raw`.
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), max, timeout_ms(timeout)) };
            if n < 0 {
                let e = last_errno();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for entry in &raw[..n as usize] {
                let bits = entry.events;
                events.events.push(Event {
                    token: entry.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(events.events.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is owned by this poller.
            unsafe { close(self.epfd) };
        }
    }

    /// Cross-thread wakeup for a [`Poller`] via an eventfd registered like
    /// any other fd.
    #[derive(Debug)]
    pub struct Waker {
        efd: RawFd,
    }

    impl Waker {
        /// Create a waker and register it on `poller` under `token`.
        pub fn new(poller: &Poller, token: usize) -> io::Result<Waker> {
            // SAFETY: plain syscall, no pointers.
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if efd < 0 {
                return Err(last_errno());
            }
            poller.register(efd, token, Interest::READABLE)?;
            Ok(Waker { efd })
        }

        /// Wake the poller: its current (or next) wait returns with the
        /// waker's token readable.
        pub fn wake(&self) -> io::Result<()> {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live stack slot.
            let n = unsafe { write(self.efd, (&one as *const u64).cast(), 8) };
            // A full eventfd counter still wakes the poller: success.
            if n == 8 || last_errno().kind() == io::ErrorKind::WouldBlock {
                Ok(())
            } else {
                Err(last_errno())
            }
        }

        /// Drain pending wakeups (call when the waker's token fires).
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: reads at most 8 bytes into a live stack buffer.
            unsafe { read(self.efd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: efd is owned by this waker.
            unsafe { close(self.efd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Portable unix backend: poll(2) + self-pipe.
// ---------------------------------------------------------------------------

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::*;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// Readiness poller over poll(2) with an interest table.
    #[derive(Debug)]
    pub struct Poller {
        registered: Mutex<Vec<(RawFd, usize, Interest)>>,
    }

    impl Poller {
        /// Create a poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: Mutex::new(Vec::new()) })
        }

        /// Register `fd` with `token` for `interest` (level-triggered).
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut table = self.registered.lock().unwrap();
            if table.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered twice"));
            }
            table.push((fd, token, interest));
            Ok(())
        }

        /// Change the interest of a registered fd.
        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut table = self.registered.lock().unwrap();
            match table.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(entry) => {
                    *entry = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Remove a registered fd.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut table = self.registered.lock().unwrap();
            let before = table.len();
            table.retain(|&(f, _, _)| f != fd);
            if table.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        /// Wait for readiness events, blocking at most `timeout`.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.events.clear();
            let snapshot: Vec<(RawFd, usize, Interest)> = self.registered.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            // SAFETY: `fds` is a live, correctly sized PollFd array.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if n < 0 {
                let e = last_errno();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for (entry, &(_, token, _)) in fds.iter().zip(snapshot.iter()) {
                let bits = entry.revents;
                if bits == 0 {
                    continue;
                }
                events.events.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    error: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(events.events.len())
        }
    }

    /// Cross-thread wakeup via a nonblocking self-pipe.
    #[derive(Debug)]
    pub struct Waker {
        rx: RawFd,
        tx: RawFd,
    }

    impl Waker {
        /// Create a waker and register its read end on `poller`.
        pub fn new(poller: &Poller, token: usize) -> io::Result<Waker> {
            const F_SETFL: i32 = 4;
            const O_NONBLOCK: i32 = 0x4;
            let mut fds = [0i32; 2];
            // SAFETY: pipe writes exactly two fds.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(last_errno());
            }
            // SAFETY: plain fcntl on owned fds.
            unsafe {
                fcntl(fds[0], F_SETFL, O_NONBLOCK);
                fcntl(fds[1], F_SETFL, O_NONBLOCK);
            }
            poller.register(fds[0], token, Interest::READABLE)?;
            Ok(Waker { rx: fds[0], tx: fds[1] })
        }

        /// Wake the poller.
        pub fn wake(&self) -> io::Result<()> {
            let byte = 1u8;
            // SAFETY: writes one byte from a live stack slot.
            let n = unsafe { write(self.tx, &byte, 1) };
            if n == 1 || last_errno().kind() == io::ErrorKind::WouldBlock {
                Ok(())
            } else {
                Err(last_errno())
            }
        }

        /// Drain pending wakeups.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reads into a live stack buffer.
                let n = unsafe { read(self.rx, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: both pipe ends are owned by this waker.
            unsafe {
                close(self.rx);
                close(self.tx);
            }
        }
    }
}

pub use sys::{Poller, Waker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn loopback_pair() -> Option<(TcpStream, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0").ok()?;
        let client = TcpStream::connect(listener.local_addr().ok()?).ok()?;
        let (server, _) = listener.accept().ok()?;
        Some((client, server))
    }

    #[test]
    fn readable_event_fires_when_data_arrives() {
        let Some((mut client, server)) = loopback_pair() else {
            eprintln!("skipping: loopback unavailable");
            return;
        };
        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, Interest::READABLE).unwrap();
        let mut events = Events::new();

        // Nothing readable yet: a short wait times out empty.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        let event = events.iter().next().expect("readable event");
        assert_eq!(event.token, 7);
        assert!(event.readable);
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn interest_changes_and_writability() {
        let Some((client, server)) = loopback_pair() else {
            eprintln!("skipping: loopback unavailable");
            return;
        };
        let _ = client;
        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 1, Interest::NONE).unwrap();
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "no interest, no events");

        // An idle socket's send buffer has room: writable fires immediately.
        poller.reregister(server.as_raw_fd(), 1, Interest::WRITABLE).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
    }

    #[test]
    fn hangup_is_reported_as_readable() {
        let Some((client, server)) = loopback_pair() else {
            eprintln!("skipping: loopback unavailable");
            return;
        };
        let poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 3, Interest::READABLE).unwrap();
        drop(client);
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        let event = events.iter().next().expect("hangup event");
        assert!(event.readable, "EOF must read as readable so the 0-byte read is observed");
        let mut buf = [0u8; 8];
        let mut stream = server;
        assert_eq!(stream.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, usize::MAX).unwrap());
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake().unwrap();
        });
        let mut events = Events::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "waker must interrupt the wait");
        assert!(events.iter().any(|e| e.token == usize::MAX && e.readable));
        waker.drain();
        // Drained: the next wait times out instead of spinning on the token.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        handle.join().unwrap();
    }

    #[test]
    fn open_file_limit_is_sane() {
        let limit = open_file_limit().expect("unix exposes RLIMIT_NOFILE");
        assert!(limit >= 64, "limit {limit} is implausibly small");
    }
}
