//! Vendored minimal `parking_lot` stand-in.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free, non-poisoning
//! API (`lock()` returns the guard directly).

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (ignores poisoning, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
