//! Vendored minimal `criterion` stand-in.
//!
//! Implements the measurement surface the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!` / `criterion_main!`) with a simple
//! fixed-iteration timer instead of criterion's statistical engine.
//! Good enough to smoke-run every bench and print comparable numbers;
//! not a statistics package.
//!
//! Set `CRITERION_SAMPLE_ITERS` to change the measured iteration count
//! (default 10).

use std::time::{Duration, Instant};

fn sample_iters() -> u64 {
    std::env::var("CRITERION_SAMPLE_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Id distinguished only by the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(full_name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { iters: sample_iters(), elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter =
        if bencher.iters > 0 { bencher.elapsed.as_secs_f64() / bencher.iters as f64 } else { 0.0 };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench: {full_name:<50} {:>12.3} ms/iter{rate}", per_iter * 1e3);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the sample count (accepted for API compatibility; ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time (accepted for API compatibility; ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the warm-up time (accepted for API compatibility; ignored).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.name), self.throughput, f);
    }

    /// Run a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.name), self.throughput, |b| f(b, input));
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into().name, None, f);
        self
    }

    /// Run a standalone benchmark borrowing an input.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&id.into().name, None, |b| f(b, input));
        self
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
