//! Vendored minimal `rand` stand-in (rand 0.9 API subset).
//!
//! Deterministic, seedable, and fast; not cryptographic.  Provides
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::random` and
//! `Rng::random_range` — the surface this workspace uses.

/// Core pseudo-random source: 64-bit output per step.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences over an [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open).
    fn random_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a natural "uniform over all values" distribution.
pub trait Standard: Sized {
    /// Sample a uniformly random value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformRange: Sized {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                // Modulo bias is negligible for simulator-sized spans.
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Provided RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xorshift64* seeded via splitmix64.  Deterministic
    /// per seed, which the memory-settings and cache tests rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step to spread low-entropy seeds.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}
