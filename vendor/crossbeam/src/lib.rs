//! Vendored minimal `crossbeam` stand-in.
//!
//! Provides `crossbeam::channel::{unbounded, bounded, Sender, Receiver}`
//! with MPMC semantics (cloneable receivers) built on a
//! `Mutex<VecDeque>` + `Condvar`.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        /// Capacity bound for `bounded` channels (`None` = unbounded).
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "sending on a full channel",
                TrySendError::Disconnected(_) => "sending on a disconnected channel",
            })
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                RecvTimeoutError::Timeout => "timed out waiting on channel",
                RecvTimeoutError::Disconnected => "channel is empty and disconnected",
            })
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel (cloneable: MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Like real crossbeam: disconnecting the receive side discards
                // queued messages (running their destructors), so a sender
                // blocked on a reply embedded in a queued message is released.
                let discarded = std::mem::take(&mut state.items);
                drop(state);
                drop(discarded);
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails with `Full` when a bounded channel is
        /// at capacity, `Disconnected` when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.capacity.is_some_and(|cap| state.items.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive; `None` when empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }

        /// Block until a value arrives, every sender disconnects, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (next, wait) = self.shared.ready.wait_timeout(state, remaining).unwrap();
                state = next;
                if wait.timed_out() && state.items.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn channel_with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), capacity, senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with_capacity(None)
    }

    /// Create a bounded MPMC channel: [`Sender::try_send`] fails with
    /// `Full` at `capacity` queued items.  (Blocking `send` on a bounded
    /// channel is not part of the vendored surface — the workspace only
    /// uses the non-blocking producer.)
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel_with_capacity(Some(capacity))
    }
}
