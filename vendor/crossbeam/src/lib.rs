//! Vendored minimal `crossbeam` stand-in.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with MPMC
//! semantics (cloneable receivers) built on a `Mutex<VecDeque>` + `Condvar`.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel (cloneable: MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Like real crossbeam: disconnecting the receive side discards
                // queued messages (running their destructors), so a sender
                // blocked on a reply embedded in a queued message is released.
                let discarded = std::mem::take(&mut state.items);
                drop(state);
                drop(discarded);
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive; `None` when empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }
}
