//! Vendored minimal `serde_derive` stand-in.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (which convert through a JSON `Value` tree rather than through
//! serde's serializer abstraction).  The parser is hand-rolled over
//! `proc_macro::TokenTree` — `syn`/`quote` are not available offline — and
//! supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (including one generic type parameter),
//! * newtype / tuple structs,
//! * enums with unit, newtype, tuple and struct variants,
//! * externally tagged (default) and internally tagged (`#[serde(tag = ..)]`)
//!   enum representations,
//! * field/variant attributes: `rename`, `rename_all`, `default`,
//!   `default = "path"`, `skip`, `skip_serializing_if = "path"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Simplified token model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Tok {
    Ident(String),
    Punct(char),
    Lit(String),
    Group(char, Vec<Tok>),
}

fn lower(stream: TokenStream, out: &mut Vec<Tok>) {
    for tree in stream {
        match tree {
            TokenTree::Ident(i) => out.push(Tok::Ident(i.to_string())),
            TokenTree::Punct(p) => out.push(Tok::Punct(p.as_char())),
            TokenTree::Literal(l) => out.push(Tok::Lit(l.to_string())),
            TokenTree::Group(g) => match g.delimiter() {
                Delimiter::None => lower(g.stream(), out),
                d => {
                    let c = match d {
                        Delimiter::Parenthesis => '(',
                        Delimiter::Brace => '{',
                        Delimiter::Bracket => '[',
                        Delimiter::None => unreachable!(),
                    };
                    let mut inner = Vec::new();
                    lower(g.stream(), &mut inner);
                    out.push(Tok::Group(c, inner));
                }
            },
        }
    }
}

fn unquote(lit: &str) -> String {
    let s = lit.trim();
    let s = s.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(s);
    // The paths/names used in this workspace need no escape handling beyond \\ and \".
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

// ---------------------------------------------------------------------------
// Parsed shapes
// ---------------------------------------------------------------------------

#[derive(Default, Debug, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    rename_all: Option<String>,
    tag: Option<String>,
    default: bool,
    default_path: Option<String>,
    skip: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug, Clone)]
struct Field {
    name: String, // empty for tuple fields
    attrs: SerdeAttrs,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    attrs: SerdeAttrs,
    kind: VariantKind,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    attrs: SerdeAttrs,
    name: String,
    generics: Vec<String>,
    body: Body,
}

struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [Tok]) -> Self {
        Cursor { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(p)) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(i)) if i == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parse a run of `#[...]` attributes, folding `serde(...)` contents.
    fn parse_attrs(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while matches!(self.peek(), Some(Tok::Punct('#'))) {
            self.pos += 1;
            let Some(Tok::Group('[', inner)) = self.next() else { continue };
            if let Some(Tok::Ident(name)) = inner.first() {
                if name == "serde" {
                    if let Some(Tok::Group('(', args)) = inner.get(1) {
                        parse_serde_args(args, &mut attrs);
                    }
                }
            }
        }
        attrs
    }

    /// Skip a `pub` / `pub(crate)` visibility marker.
    fn skip_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(Tok::Group('(', _)) = self.peek() {
                self.pos += 1;
            }
        }
    }

    /// Skip type tokens until a top-level comma (angle-bracket aware).
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct(',') if angle == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_serde_args(args: &[Tok], attrs: &mut SerdeAttrs) {
    let mut c = Cursor::new(args);
    while let Some(tok) = c.next() {
        let Tok::Ident(key) = tok else { continue };
        let value = if c.eat_punct('=') {
            match c.next() {
                Some(Tok::Lit(l)) => Some(unquote(l)),
                _ => None,
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("default", Some(v)) => attrs.default_path = Some(v),
            ("default", None) => attrs.default = true,
            ("skip", None) => attrs.skip = true,
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            _ => {}
        }
        c.eat_punct(',');
    }
}

fn parse_named_fields(toks: &[Tok]) -> Vec<Field> {
    let mut c = Cursor::new(toks);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = c.parse_attrs();
        c.skip_vis();
        let Some(Tok::Ident(name)) = c.next() else { break };
        if !c.eat_punct(':') {
            break;
        }
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name: name.clone(), attrs });
    }
    fields
}

fn parse_tuple_arity(toks: &[Tok]) -> usize {
    let mut c = Cursor::new(toks);
    let mut arity = 0;
    while c.peek().is_some() {
        let _ = c.parse_attrs();
        c.skip_vis();
        c.skip_type();
        c.eat_punct(',');
        arity += 1;
    }
    arity
}

fn parse_variants(toks: &[Tok]) -> Vec<Variant> {
    let mut c = Cursor::new(toks);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let attrs = c.parse_attrs();
        let Some(Tok::Ident(name)) = c.next() else { break };
        let kind = match c.peek() {
            Some(Tok::Group('(', inner)) => {
                let arity = parse_tuple_arity(inner);
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(Tok::Group('{', inner)) => {
                let fields = parse_named_fields(inner);
                c.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if c.eat_punct('=') {
            // Skip an explicit discriminant expression.
            while let Some(t) = c.peek() {
                if matches!(t, Tok::Punct(',')) {
                    break;
                }
                c.pos += 1;
            }
        }
        c.eat_punct(',');
        variants.push(Variant { name: name.clone(), attrs, kind });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Input {
    let mut toks = Vec::new();
    lower(stream, &mut toks);
    let mut c = Cursor::new(&toks);
    let attrs = c.parse_attrs();
    c.skip_vis();
    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!("serde derive: expected struct or enum");
    };
    let Some(Tok::Ident(name)) = c.next() else { panic!("serde derive: expected type name") };
    let name = name.clone();

    let mut generics = Vec::new();
    if c.eat_punct('<') {
        let mut depth = 1;
        let mut expect_param = true;
        while depth > 0 {
            match c.next() {
                Some(Tok::Punct('<')) => depth += 1,
                Some(Tok::Punct('>')) => depth -= 1,
                Some(Tok::Punct(',')) if depth == 1 => expect_param = true,
                Some(Tok::Ident(id)) if depth == 1 && expect_param => {
                    generics.push(id.clone());
                    expect_param = false;
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    let body = if is_enum {
        let Some(Tok::Group('{', inner)) = c.next() else {
            panic!("serde derive: expected enum body")
        };
        Body::Enum(parse_variants(inner))
    } else {
        match c.next() {
            Some(Tok::Group('{', inner)) => Body::NamedStruct(parse_named_fields(inner)),
            Some(Tok::Group('(', inner)) => Body::TupleStruct(parse_tuple_arity(inner)),
            _ => panic!("serde derive: unsupported struct shape"),
        }
    };

    Input { attrs, name, generics, body }
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn camel_case(name: &str) -> String {
    // lowerCamelCase from UpperCamelCase or snake_case.
    let mut out = String::new();
    let mut upper_next = false;
    for (i, ch) in name.chars().enumerate() {
        if ch == '_' {
            upper_next = true;
        } else if i == 0 {
            out.push(ch.to_ascii_lowercase());
        } else if upper_next {
            out.push(ch.to_ascii_uppercase());
            upper_next = false;
        } else {
            out.push(ch);
        }
    }
    out
}

fn apply_rename_all(rule: &str, name: &str) -> String {
    match rule {
        "snake_case" => snake_case(name),
        "camelCase" => camel_case(name),
        "lowercase" => name.to_ascii_lowercase(),
        "UPPERCASE" => name.to_ascii_uppercase(),
        "kebab-case" => snake_case(name).replace('_', "-"),
        "SCREAMING_SNAKE_CASE" => snake_case(name).to_ascii_uppercase(),
        _ => name.to_string(),
    }
}

fn variant_key(container: &SerdeAttrs, v: &Variant) -> String {
    if let Some(r) = &v.attrs.rename {
        return r.clone();
    }
    match &container.rename_all {
        Some(rule) => apply_rename_all(rule, &v.name),
        None => v.name.clone(),
    }
}

fn field_key(f: &Field) -> String {
    f.attrs.rename.clone().unwrap_or_else(|| f.name.clone())
}

fn impl_header(input: &Input, trait_name: &str) -> String {
    if input.generics.is_empty() {
        format!("impl serde::{t} for {n}", t = trait_name, n = input.name)
    } else {
        let params = input.generics.join(", ");
        let bounds = input
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("impl<{bounds}> serde::{trait_name} for {n}<{params}>", n = input.name)
    }
}

/// Serialization statements for named fields; `access` maps a field name to
/// an expression of type `&FieldTy` (e.g. `&self.f` or a match binding).
fn ser_named_fields(fields: &[Field], map_var: &str, access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let key = field_key(f);
        let expr = access(&f.name);
        let insert =
            format!("{map_var}.insert({key:?}.to_string(), serde::Serialize::to_value({expr}));\n");
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !{pred}({expr}) {{ {insert} }}\n"));
        } else {
            out.push_str(&insert);
        }
    }
    out
}

/// `field: <parse expr>,` initializers for named fields read from `obj_var`
/// (an expression of type `&serde::Map`).
fn de_named_fields(type_name: &str, fields: &[Field], obj_var: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let key = field_key(f);
        let missing = if f.attrs.skip {
            // Never read skipped fields.
            out.push_str(&format!("{f}: ::std::default::Default::default(),\n", f = f.name));
            continue;
        } else if let Some(path) = &f.attrs.default_path {
            format!("{path}()")
        } else if f.attrs.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(serde::Error::custom(\
                 \"missing field `{key}` in {type_name}\"))"
            )
        };
        out.push_str(&format!(
            "{name}: match {obj_var}.get({key:?}) {{\n\
               ::std::option::Option::Some(__x) => serde::Deserialize::from_value(__x)?,\n\
               ::std::option::Option::None => {missing},\n\
             }},\n",
            name = f.name,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Serialize derive
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let inserts = ser_named_fields(fields, "__m", |f| format!("&self.{f}"));
            format!("let mut __m = serde::Map::new();\n{inserts}serde::Value::Object(__m)")
        }
        Body::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("serde::Value::Array(vec![{items}])")
        }
        Body::Enum(variants) => gen_serialize_enum(input, variants),
    };
    format!(
        "{header} {{\n fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n",
        header = impl_header(input, "Serialize")
    )
}

fn gen_serialize_enum(input: &Input, variants: &[Variant]) -> String {
    let name = &input.name;
    let tag = input.attrs.tag.as_deref();
    let mut arms = String::new();
    for v in variants {
        let key = variant_key(&input.attrs, v);
        let arm = match (&v.kind, tag) {
            (VariantKind::Unit, None) => {
                format!("{name}::{v} => serde::Value::String({key:?}.to_string()),\n", v = v.name)
            }
            (VariantKind::Unit, Some(t)) => format!(
                "{name}::{v} => {{\n\
                   let mut __m = serde::Map::new();\n\
                   __m.insert({t:?}.to_string(), serde::Value::String({key:?}.to_string()));\n\
                   serde::Value::Object(__m)\n\
                 }}\n",
                v = v.name
            ),
            (VariantKind::Tuple(1), None) => format!(
                "{name}::{v}(__f0) => {{\n\
                   let mut __m = serde::Map::new();\n\
                   __m.insert({key:?}.to_string(), serde::Serialize::to_value(__f0));\n\
                   serde::Value::Object(__m)\n\
                 }}\n",
                v = v.name
            ),
            (VariantKind::Tuple(1), Some(t)) => format!(
                "{name}::{v}(__f0) => {{\n\
                   let mut __m = serde::Map::new();\n\
                   __m.insert({t:?}.to_string(), serde::Value::String({key:?}.to_string()));\n\
                   if let serde::Value::Object(__inner) = serde::Serialize::to_value(__f0) {{\n\
                       for (__k, __val) in __inner.iter() {{\n\
                           if __k != {t:?} {{ __m.insert(__k.clone(), __val.clone()); }}\n\
                       }}\n\
                   }}\n\
                   serde::Value::Object(__m)\n\
                 }}\n",
                v = v.name
            ),
            (VariantKind::Tuple(n), _) => {
                let binds = (0..*n).map(|i| format!("__f{i}")).collect::<Vec<_>>().join(", ");
                let items = (0..*n)
                    .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{name}::{v}({binds}) => {{\n\
                       let mut __m = serde::Map::new();\n\
                       __m.insert({key:?}.to_string(), serde::Value::Array(vec![{items}]));\n\
                       serde::Value::Object(__m)\n\
                     }}\n",
                    v = v.name
                )
            }
            (VariantKind::Struct(fields), repr) => {
                let binds = fields
                    .iter()
                    .map(|f| format!("{n}: __b_{n}", n = f.name))
                    .collect::<Vec<_>>()
                    .join(", ");
                let inserts = ser_named_fields(fields, "__fm", |f| format!("__b_{f}"));
                match repr {
                    None => format!(
                        "{name}::{v} {{ {binds} }} => {{\n\
                           let mut __fm = serde::Map::new();\n{inserts}\
                           let mut __m = serde::Map::new();\n\
                           __m.insert({key:?}.to_string(), serde::Value::Object(__fm));\n\
                           serde::Value::Object(__m)\n\
                         }}\n",
                        v = v.name
                    ),
                    Some(t) => format!(
                        "{name}::{v} {{ {binds} }} => {{\n\
                           let mut __fm = serde::Map::new();\n\
                           __fm.insert({t:?}.to_string(), serde::Value::String({key:?}.to_string()));\n{inserts}\
                           serde::Value::Object(__fm)\n\
                         }}\n",
                        v = v.name
                    ),
                }
            }
        };
        arms.push_str(&arm);
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize derive
// ---------------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let inits = de_named_fields(name, fields, "__o");
            format!(
                "let __o = __v.as_object().ok_or_else(|| serde::Error::custom(\
                 \"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __a = __v.as_array().ok_or_else(|| serde::Error::custom(\
                 \"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{\n\
                     return ::std::result::Result::Err(serde::Error::custom(\
                     \"wrong tuple length for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Body::Enum(variants) => match input.attrs.tag.as_deref() {
            Some(tag) => gen_deserialize_enum_tagged(input, variants, tag),
            None => gen_deserialize_enum_external(input, variants),
        },
    };
    format!(
        "{header} {{\n fn from_value(__v: &serde::Value) \
         -> ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n}}\n",
        header = impl_header(input, "Deserialize")
    )
}

fn de_variant_from_inner(name: &str, v: &Variant, inner: &str) -> String {
    match &v.kind {
        VariantKind::Unit => format!("::std::result::Result::Ok({name}::{v})", v = v.name),
        VariantKind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}::{v}(serde::Deserialize::from_value({inner})?))",
            v = v.name
        ),
        VariantKind::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{\n\
                   let __a = {inner}.as_array().ok_or_else(|| serde::Error::custom(\
                   \"expected array for {name}::{v}\"))?;\n\
                   if __a.len() != {n} {{\n\
                       return ::std::result::Result::Err(serde::Error::custom(\
                       \"wrong tuple length for {name}::{v}\"));\n\
                   }}\n\
                   ::std::result::Result::Ok({name}::{v}({items}))\n\
                 }}",
                v = v.name
            )
        }
        VariantKind::Struct(fields) => {
            let inits = de_named_fields(name, fields, "__fo");
            format!(
                "{{\n\
                   let __fo = {inner}.as_object().ok_or_else(|| serde::Error::custom(\
                   \"expected object for {name}::{v}\"))?;\n\
                   ::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n\
                 }}",
                v = v.name
            )
        }
    }
}

fn gen_deserialize_enum_external(input: &Input, variants: &[Variant]) -> String {
    let name = &input.name;
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let key = variant_key(&input.attrs, v);
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "{key:?} => ::std::result::Result::Ok({name}::{v}),\n",
                v = v.name
            )),
            _ => data_arms.push_str(&format!(
                "{key:?} => {arm},\n",
                arm = de_variant_from_inner(name, v, "__inner")
            )),
        }
    }
    format!(
        "match __v {{\n\
           serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
             __other => ::std::result::Result::Err(serde::Error::custom(format!(\
             \"unknown {name} variant `{{__other}}`\"))),\n\
           }},\n\
           serde::Value::Object(__o) if __o.len() == 1 => {{\n\
             let (__k, __inner) = __o.iter().next().unwrap();\n\
             match __k.as_str() {{\n{data_arms}\
               __other => ::std::result::Result::Err(serde::Error::custom(format!(\
               \"unknown {name} variant `{{__other}}`\"))),\n\
             }}\n\
           }}\n\
           _ => ::std::result::Result::Err(serde::Error::custom(\
           \"expected string or single-key object for {name}\")),\n\
         }}"
    )
}

fn gen_deserialize_enum_tagged(input: &Input, variants: &[Variant], tag: &str) -> String {
    let name = &input.name;
    let mut arms = String::new();
    for v in variants {
        let key = variant_key(&input.attrs, v);
        let arm = match &v.kind {
            VariantKind::Unit => {
                format!("{key:?} => ::std::result::Result::Ok({name}::{v}),\n", v = v.name)
            }
            // Newtype: the inner type re-parses the whole (tagged) object.
            VariantKind::Tuple(1) => format!(
                "{key:?} => ::std::result::Result::Ok({name}::{v}(\
                 serde::Deserialize::from_value(__v)?)),\n",
                v = v.name
            ),
            VariantKind::Struct(fields) => {
                let inits = de_named_fields(name, fields, "__o");
                format!(
                    "{key:?} => ::std::result::Result::Ok({name}::{v} {{\n{inits}}}),\n",
                    v = v.name
                )
            }
            VariantKind::Tuple(_) => {
                panic!("serde derive: internally tagged multi-field tuple variants are unsupported")
            }
        };
        arms.push_str(&arm);
    }
    format!(
        "let __o = __v.as_object().ok_or_else(|| serde::Error::custom(\
         \"expected object for {name}\"))?;\n\
         let __tag = __o.get({tag:?}).and_then(|t| t.as_str()).ok_or_else(|| \
         serde::Error::custom(\"missing `{tag}` tag for {name}\"))?;\n\
         match __tag {{\n{arms}\
           __other => ::std::result::Result::Err(serde::Error::custom(format!(\
           \"unknown {name} variant `{{__other}}`\"))),\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = gen_serialize(&parsed);
    code.parse().unwrap_or_else(|e| panic!("serde derive produced invalid code: {e}\n{code}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = gen_deserialize(&parsed);
    code.parse().unwrap_or_else(|e| panic!("serde derive produced invalid code: {e}\n{code}"))
}
