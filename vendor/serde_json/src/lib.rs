//! Vendored minimal `serde_json` stand-in.
//!
//! Works against the vendored `serde` facade: types serialize into a JSON
//! [`Value`] tree which this crate renders to text, and deserialize from a
//! `Value` tree this crate parses out of text.  Output formatting matches
//! real serde_json (compact by default, 2-space `to_string_pretty`, struct
//! fields in declaration order, floats with a trailing `.0`).

pub use serde::{Error, Map, Number, Value};

/// `Result` alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` to a compact JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            out.push_str(&to_string_number(n));
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn to_string_number(n: &Number) -> String {
    if let Some(u) = n.as_u64() {
        u.to_string()
    } else if let Some(i) = n.as_i64() {
        i.to_string()
    } else {
        match n.as_f64() {
            Some(f) if f.is_finite() => format!("{f:?}"),
            _ => "null".to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserialize a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this workspace's payloads.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] from a JSON-like literal.  Supports string-literal keys,
/// nested objects/arrays, and arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($content:tt)+ }) => {{
        let mut __map = $crate::Map::new();
        $crate::__json_object!(__map; $($content)+);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::__to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    // Done.
    ($map:ident;) => {};
    // Start a new `key: value` entry; munch the value token-by-token.
    ($map:ident; $key:literal : $($rest:tt)*) => {
        $crate::__json_value!($map; $key; []; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_value {
    // Value complete at end of input.
    ($map:ident; $key:literal; [$($val:tt)*];) => {
        $map.insert($key.to_string(), $crate::json!($($val)*));
    };
    // Value complete at a top-level comma.
    ($map:ident; $key:literal; [$($val:tt)*]; , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($($val)*));
        $crate::__json_object!($map; $($rest)*);
    };
    // Munch one token into the value buffer.
    ($map:ident; $key:literal; [$($val:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::__json_value!($map; $key; [$($val)* $next]; $($rest)*);
    };
}
