//! Vendored minimal `proptest` stand-in.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `any::<T>()`, numeric range
//! strategies, character-class regex string strategies (`"[a-z]{1,8}"`),
//! `proptest::collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! No shrinking: a failing case reports its generated inputs and panics.
//!
//! Case counts are environment-gated for CI friendliness: the
//! `PROPTEST_CASES` environment variable overrides every suite's configured
//! case count (e.g. `PROPTEST_CASES=16` for a quick run,
//! `PROPTEST_CASES=4096` for a deep local run).

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config with `cases` cases, unless `PROPTEST_CASES` overrides it.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases: env_cases().unwrap_or(cases) }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

/// Error produced by `prop_assert!` macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Failure description.
    pub message: String,
}

impl TestCaseError {
    /// Build from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic test RNG (xorshift64*, seeded per test name and case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from an arbitrary string (the test name).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a strategy by mapping generated values through `map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.map)(self.inner.new_value(rng))
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// `any::<T>()` marker strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform over all values of the type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

/// Character-class regex strategies: `"[class]{m,n}"` (plus a bare class,
/// meaning one repetition).  This covers every pattern in the workspace.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_charclass_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

fn parse_charclass_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    if chars.next()? != '[' {
        return None;
    }
    let mut set: Vec<char> = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars.next()?;
        match c {
            ']' => break,
            '\\' => {
                let esc = chars.next()?;
                let lit = match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other, // \\ \- \] etc. are literal
                };
                set.push(lit);
                prev = Some(lit);
            }
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let hi = chars.next()?;
                let lo = prev.take()?;
                for code in (lo as u32 + 1)..=(hi as u32) {
                    set.push(char::from_u32(code)?);
                }
            }
            other => {
                set.push(other);
                prev = Some(other);
            }
        }
    }
    let (min, max) = match chars.peek() {
        Some('{') => {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            if chars.next().is_some() {
                return None; // trailing garbage after `}`
            }
            match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = spec.trim().parse().ok()?;
                    (n, n)
                }
            }
        }
        None => (1, 1),
        Some(_) => return None,
    };
    if set.is_empty() || max < min {
        return None;
    }
    Some((set, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = Strategy::new_value(&self.size, rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// mid-generation) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Define property tests.  Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(a in 0i32..100, b in any::<u8>()) {
///         prop_assert!(a >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut __rng);)*
                let __dbg = format!(concat!($(stringify!($arg), " = {:?}, ",)* ""), $(&$arg,)*);
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), __case + 1, __config.cases, e, __dbg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}
