//! Vendored minimal `bytes` stand-in: `Bytes`, `BytesMut` and `BufMut`
//! backed by plain `Vec<u8>` (no zero-copy slicing, which the workspace
//! doesn't need).

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    /// Recover the owned `Vec<u8>` when this is the last handle to the
    /// buffer (the buffer-reuse handoff: a producer that kept its previous
    /// payload can reclaim the allocation once every consumer dropped its
    /// clone).  Returns `self` unchanged when other handles still exist.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        Arc::try_unwrap(self.data).map_err(|data| Bytes { data })
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::new(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::new(self.data) }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-style primitive writers.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, slice: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}
