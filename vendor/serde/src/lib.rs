//! Vendored minimal `serde` stand-in.
//!
//! The build environment has no network access, so the workspace vendors a
//! small serde facade with the same public surface the codebase uses:
//! `Serialize` / `Deserialize` traits, the derive macros, and a JSON value
//! tree (`Value`) that `serde_json` re-exports.  Unlike real serde there is
//! no serializer/deserializer abstraction: serialization goes through the
//! `Value` tree directly, which is all a JSON-only workspace needs.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Map, Number, Value};

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error with a custom message.
    pub fn custom(message: impl std::fmt::Display) -> Self {
        Error { message: message.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Convert `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse `Self` out of a JSON value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 { Value::Number(Number::from_u64(v as u64)) }
                else { Value::Number(Number::from_i64(v as i64)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_number()
                    .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))?;
                n.to_i128()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| Error::custom(format!("number {n:?} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() { Value::Number(Number::from_f64(*self as f64)) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))
            }
        }
    )*};
}

impl_ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom(format!("expected bool, got {value:?}")))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| Error::custom(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into())
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| Error::custom("expected object for map"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output, mirroring serde_json's BTreeMap-backed Map.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| Error::custom("expected object for map"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
