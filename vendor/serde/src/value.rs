//! The JSON value tree shared by `serde` and `serde_json`.

/// A JSON number: a non-negative integer, a negative integer, or a float.
#[derive(Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// Build from an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number { n: N::U(v) }
    }

    /// Build from a signed integer (normalized: non-negative stored unsigned).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number { n: N::U(v as u64) }
        } else {
            Number { n: N::I(v) }
        }
    }

    /// Build from a float.
    pub fn from_f64(v: f64) -> Self {
        Number { n: N::F(v) }
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::U(v) => Some(v),
            N::I(_) => None,
            N::F(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::U(v) => i64::try_from(v).ok(),
            N::I(v) => Some(v),
            N::F(_) => None,
        }
    }

    /// As `f64` (integers convert losslessly within 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::U(v) => Some(v as f64),
            N::I(v) => Some(v as f64),
            N::F(v) => Some(v),
        }
    }

    /// Whether this number is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::F(_))
    }

    pub(crate) fn to_i128(self) -> Option<i128> {
        match self.n {
            N::U(v) => Some(v as i128),
            N::I(v) => Some(v as i128),
            N::F(v) if v.fract() == 0.0 && v.abs() < 9e18 => Some(v as i128),
            N::F(_) => None,
        }
    }

    /// Render exactly as serde_json would (integers bare, floats with `.0`).
    pub(crate) fn render(&self) -> String {
        match self.n {
            N::U(v) => v.to_string(),
            N::I(v) => v.to_string(),
            // Rust's Debug for floats is shortest-round-trip, like ryu, and
            // keeps a trailing `.0` on integral values.
            N::F(v) => format!("{v:?}"),
        }
    }
}

impl std::fmt::Debug for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::F(a), N::F(b)) => a == b,
            (N::F(_), _) | (_, N::F(_)) => false,
            _ => self.to_i128() == other.to_i128(),
        }
    }
}

/// An insertion-ordered string-keyed map (serde_json's `Map` stand-in).
#[derive(Clone, Debug, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Insert, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(std::mem::replace(&mut slot.1, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        // Key order is serialization detail, not identity.
        self.len() == other.len()
            && self.iter().all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_number().and_then(Number::as_u64)
    }

    /// The value as an `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_number().and_then(Number::as_i64)
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().and_then(Number::as_f64)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-field access that returns `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $build:expr),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::redundant_closure_call)]
                self.as_number().is_some_and(|n| *n == ($build)(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num! {
    i32 => |v: i32| Number::from_i64(v as i64),
    i64 => Number::from_i64,
    u32 => |v: u32| Number::from_u64(v as u64),
    u64 => Number::from_u64,
    usize => |v: usize| Number::from_u64(v as u64),
    f64 => Number::from_f64
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

macro_rules! impl_value_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                crate::Serialize::to_value(&v)
            }
        }
    )*};
}

impl_value_from_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);
