//! # riscv-superscalar-sim
//!
//! Umbrella crate for the Rust reproduction of *"Web-Based Simulator of
//! Superscalar RISC-V Processors"* (SC'24): a cycle-level, fully configurable
//! superscalar out-of-order RV32IM+F processor simulator with an L1 cache,
//! branch prediction, a two-pass assembler, a small C compiler, a simulation
//! server with a JSON API, a load generator and a batch CLI.
//!
//! The individual subsystems live in their own crates and are re-exported
//! here under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`isa`] | `rvsim-isa` | RV32IM+F instruction set, postfix semantics interpreter |
//! | [`asm`] | `rvsim-asm` | two-pass assembler, directives, operand expressions |
//! | [`mem`] | `rvsim-mem` | transactional main memory + configurable L1 cache |
//! | [`predictor`] | `rvsim-predictor` | BTB, PHT, zero/one/two-bit predictors, history |
//! | [`core`] | `rvsim-core` | the superscalar out-of-order pipeline and statistics |
//! | [`iss`] | `rvsim-iss` | in-order reference ISS, program generator, co-simulation |
//! | [`cc`] | `rvsim-cc` | C-subset compiler with `-O0..-O3` |
//! | [`compress`] | `rvsim-compress` | LZSS payload compression (gzip stand-in) |
//! | [`server`] | `rvsim-server` | session server with a JSON request/response API |
//! | [`net`] | `rvsim-net` | HTTP/1.1 network front end over TCP (keep-alive, metrics) |
//! | [`loadgen`] | `rvsim-loadgen` | closed-loop load generator (JMeter stand-in) |
//!
//! ## Quickstart
//!
//! ```
//! use riscv_superscalar_sim::prelude::*;
//!
//! let asm = "
//! main:
//!     li   a0, 0
//!     li   t0, 5
//! loop:
//!     addi a0, a0, 10
//!     addi t0, t0, -1
//!     bnez t0, loop
//!     ret
//! ";
//! let mut sim = Simulator::from_assembly(asm, &ArchitectureConfig::default()).unwrap();
//! sim.run(100_000).unwrap();
//! assert_eq!(sim.int_register(10), 50);
//! ```

pub use rvsim_asm as asm;
pub use rvsim_cc as cc;
pub use rvsim_compress as compress;
pub use rvsim_core as core;
pub use rvsim_isa as isa;
pub use rvsim_iss as iss;
pub use rvsim_loadgen as loadgen;
pub use rvsim_mem as mem;
pub use rvsim_net as net;
pub use rvsim_predictor as predictor;
pub use rvsim_server as server;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use rvsim_asm::{assemble, AssemblerOptions, Program};
    pub use rvsim_cc::{compile, OptLevel};
    pub use rvsim_core::{
        ArchitectureConfig, HaltReason, ProcessorSnapshot, RunResult, SimulationStatistics,
        Simulator,
    };
    pub use rvsim_isa::{InstructionSet, RegisterId};
    pub use rvsim_iss::{generate_program, Cosim, CosimOutcome, GenOptions, Iss};
    pub use rvsim_loadgen::{run_load_test, run_load_test_tcp, LoadTestReport, Scenario};
    pub use rvsim_mem::{ArrayFill, CacheConfig, MemoryArray, MemorySettings, ScalarType};
    pub use rvsim_net::{NetConfig, NetServer, TcpApiClient};
    pub use rvsim_predictor::{BranchPredictorConfig, CounterState, HistoryKind, PredictorKind};
    pub use rvsim_server::{
        DeploymentConfig, DeploymentMode, Request, Response, SimulationServer, ThreadedServer,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        let config = ArchitectureConfig::default();
        let mut sim = Simulator::from_assembly("main:\n  li a0, 3\n  ret\n", &config).unwrap();
        sim.run(1000).unwrap();
        assert_eq!(sim.int_register(10), 3);
        let compiled = compile("int main(void){ return 4; }", OptLevel::O1).unwrap();
        assert!(compiled.assembly.contains("main:"));
    }
}
